package core

import (
	"context"
	"errors"
	"fmt"

	"relcomplete/internal/ctable"
	"relcomplete/internal/obs"
	"relcomplete/internal/relation"
	"relcomplete/internal/search"
)

// This file implements the weak completeness model (Section 5): the
// certain-answer based RCDPw via the characterisation of Lemma 5.2
// (Theorem 5.1; decidable even for FP), the trivially decidable RCQPw
// with the constructive witness of the Theorem 5.4 proof, and MINPw
// with the Lemma 5.7 fast path for CQ (Theorem 5.6). FO remains
// undecidable in this model.

// CertainAnswers computes ∩_{I ∈ ModAdom(T, Dm, V)} Q(I), the certain
// answers of Q on the c-instance. ErrInconsistent when Mod is empty.
func (p *Problem) CertainAnswers(ci *ctable.CInstance) ([]relation.Tuple, error) {
	return p.CertainAnswersCtx(context.Background(), ci)
}

// CertainAnswersCtx is CertainAnswers honoring the context's deadline
// and cancellation; an abort surfaces as a *DeadlineError. A partial
// intersection is a superset of the certain answers, so no partial
// result is returned.
func (p *Problem) CertainAnswersCtx(ctx context.Context, ci *ctable.CInstance) ([]relation.Tuple, error) {
	ctx, endSpan := p.span(ctx, "certain_answers")
	defer endSpan()
	g := p.beginOp(ctx, "certain_answers", "intersection over %d models incomplete")
	d, err := p.domainsFor(ci, false, false)
	if err != nil {
		return nil, err
	}
	ans, err := p.certainAnswers(ctx, ci, d)
	return ans, g.wrap(err)
}

// certainAnswers intersects Q over the models. Query evaluation fans
// out over the workers; the results are folded into the intersection
// strictly in enumeration order (search.ForEachOrdered), so the
// accumulated slice — its order included — matches the sequential fold
// bit for bit, and the early stop on an empty intersection fires at
// the same model.
func (p *Problem) certainAnswers(ctx context.Context, ci *ctable.CInstance, d *domains) ([]relation.Tuple, error) {
	type modelAnswers struct {
		ans     []relation.Tuple
		isModel bool
	}
	var acc []relation.Tuple
	universe := true
	any := false
	var genErr error
	stopped, err := search.ForEachOrdered(ctx, p.Options.workers(), p.Options.Obs,
		p.modelCandidates(ctx, ci, d, &genErr),
		func(ctx context.Context, idx int, db *relation.Database) (modelAnswers, error) {
			ok, err := p.checkModel(ctx, db)
			if err != nil || !ok {
				return modelAnswers{}, err
			}
			ans, err := p.answers(ctx, db)
			if err != nil {
				return modelAnswers{}, err
			}
			return modelAnswers{ans: ans, isModel: true}, nil
		},
		func(idx int, r modelAnswers) (bool, error) {
			if !r.isModel {
				return true, nil
			}
			any = true
			acc, universe = intersectTuples(acc, universe, r.ans)
			return universe || len(acc) > 0, nil
		})
	if err != nil {
		return nil, err
	}
	if !stopped && genErr != nil {
		return nil, genErr
	}
	if !any {
		return nil, ErrInconsistent
	}
	return acc, nil
}

// CertainAnswersOfExtensions computes the certain answers of Q over all
// partially closed extensions of all models of T:
//
//	∩_{I ∈ ModAdom(T), I' ∈ Ext(I)} Q(I').
//
// By the monotonicity of CQ/UCQ/∃FO+/FP and the single-tuple extension
// property (Lemma 5.2 and Appendix A), it suffices to intersect over
// single-tuple extensions of the models of T — and a tuple can join a
// partially closed extension only when it is single-tuple closed
// itself (CC antimonotonicity), so the added tuple ranges over the
// pre-filtered candidate lattice rather than over raw valuations. The
// second return value reports whether any extension exists at all;
// when it is false the first value is nil and the paper's definition
// makes T weakly complete vacuously.
func (p *Problem) CertainAnswersOfExtensions(ci *ctable.CInstance) ([]relation.Tuple, bool, error) {
	return p.CertainAnswersOfExtensionsCtx(context.Background(), ci)
}

// CertainAnswersOfExtensionsCtx is CertainAnswersOfExtensions honoring
// the context's deadline.
func (p *Problem) CertainAnswersOfExtensionsCtx(ctx context.Context, ci *ctable.CInstance) ([]relation.Tuple, bool, error) {
	g := p.beginOp(ctx, "certain_answers_of_extensions", "intersection over %d models incomplete")
	acc, _, anyExt, err := p.certainExtStream(ctx, ci, nil)
	return acc, anyExt, g.wrap(err)
}

// certainExtStream intersects Q over qualifying (model, single-tuple
// extension) pairs. When stopWithin is non-nil, the enumeration halts
// as soon as the running intersection is contained in stopWithin —
// later pairs only shrink the intersection, so the containment verdict
// is already final. It returns the intersection (meaningless when
// contained is true), whether containment in stopWithin was
// established, and whether any qualifying extension exists.
//
// With several workers the per-model extension scans run concurrently,
// each folding a model-local intersection that the consumer merges in
// enumeration order (certainExtStreamPar); the early stops stay sound
// because the global intersection is contained in every model-local
// one. At workers <= 1 the original single-loop scan runs unchanged —
// its interleaved early stops inspect the global accumulator after
// every single extension, a schedule the parallel decomposition cannot
// reproduce pair-for-pair (the verdicts still agree).
func (p *Problem) certainExtStream(ctx context.Context, ci *ctable.CInstance, stopWithin map[string]bool) (
	acc []relation.Tuple, contained bool, anyExt bool, err error) {
	if !p.Query.Monotone() {
		return nil, false, false, fmt.Errorf("certain answers of extensions for FO: %w", ErrUndecidable)
	}
	d, err := p.domainsFor(ci, false, true)
	if err != nil {
		return nil, false, false, err
	}
	if p.Options.workers() > 1 {
		return p.certainExtStreamPar(ctx, ci, d, stopWithin)
	}
	universe := true
	within := func() bool {
		if stopWithin == nil || universe {
			return false
		}
		for _, t := range acc {
			if !stopWithin[t.Key()] {
				return false
			}
		}
		return true
	}
	err = p.forEachModel(ctx, ci, d, func(base *relation.Database, mu ctable.Valuation) (bool, error) {
		for _, r := range p.Schema.Relations() {
			stop := false
			done, err := p.latticeOver(ctx, r, d, func(t relation.Tuple) (bool, error) {
				if base.Relation(r.Name).Contains(t) {
					return true, nil
				}
				p.Options.Obs.Inc(obs.ExtensionsTested)
				ext := base.WithTuple(r.Name, t)
				closed, err := p.satisfiesCCs(ctx, ext)
				if err != nil {
					return false, err
				}
				if !closed {
					return true, nil
				}
				anyExt = true
				ans, err := p.answers(ctx, ext)
				if err != nil {
					return false, err
				}
				acc, universe = intersectTuples(acc, universe, ans)
				if within() {
					contained = true
					stop = true
					return false, nil
				}
				if !universe && len(acc) == 0 {
					// Empty intersection is contained in anything.
					if stopWithin != nil {
						contained = true
					}
					stop = true
					return false, nil
				}
				return true, nil
			})
			if err != nil {
				return false, err
			}
			if !done && stop {
				return false, nil
			}
		}
		return true, nil
	})
	if err != nil {
		return nil, false, false, err
	}
	return acc, contained, anyExt, nil
}

// modelExtScan is one model's contribution to the extension stream: the
// intersection of Q over the model's qualifying single-tuple
// extensions (universe when none qualifies), plus the local early-stop
// verdicts.
type modelExtScan struct {
	isModel   bool
	universe  bool
	acc       []relation.Tuple
	anyExt    bool
	contained bool // the local scan alone established containment
}

// certainExtStreamPar is the parallel decomposition of the extension
// stream: each model's extensions are scanned by a worker into a local
// intersection, and the consumer folds the locals in enumeration
// order. Every local intersection contains the global one, so a local
// early stop (local acc ⊆ stopWithin, or a local empty intersection)
// already decides the global verdict.
func (p *Problem) certainExtStreamPar(ctx context.Context, ci *ctable.CInstance, d *domains, stopWithin map[string]bool) (
	acc []relation.Tuple, contained bool, anyExt bool, err error) {
	universe := true
	within := func() bool {
		if stopWithin == nil || universe {
			return false
		}
		for _, t := range acc {
			if !stopWithin[t.Key()] {
				return false
			}
		}
		return true
	}
	probe := func(ctx context.Context, idx int, base *relation.Database) (modelExtScan, error) {
		s := modelExtScan{universe: true}
		ok, err := p.checkModel(ctx, base)
		if err != nil || !ok {
			return s, err
		}
		s.isModel = true
		localWithin := func() bool {
			if stopWithin == nil || s.universe {
				return false
			}
			for _, t := range s.acc {
				if !stopWithin[t.Key()] {
					return false
				}
			}
			return true
		}
		for _, r := range p.Schema.Relations() {
			stop := false
			done, err := p.latticeOver(ctx, r, d, func(t relation.Tuple) (bool, error) {
				if base.Relation(r.Name).Contains(t) {
					return true, nil
				}
				p.Options.Obs.Inc(obs.ExtensionsTested)
				ext := base.WithTuple(r.Name, t)
				closed, err := p.satisfiesCCs(ctx, ext)
				if err != nil {
					return false, err
				}
				if !closed {
					return true, nil
				}
				s.anyExt = true
				ans, err := p.answers(ctx, ext)
				if err != nil {
					return false, err
				}
				s.acc, s.universe = intersectTuples(s.acc, s.universe, ans)
				if localWithin() {
					s.contained = true
					stop = true
					return false, nil
				}
				if !s.universe && len(s.acc) == 0 {
					if stopWithin != nil {
						s.contained = true
					}
					stop = true
					return false, nil
				}
				return true, nil
			})
			if err != nil {
				return s, err
			}
			if !done && stop {
				return s, nil
			}
		}
		return s, nil
	}
	var genErr error
	stopped, err := search.ForEachOrdered(ctx, p.Options.workers(), p.Options.Obs,
		p.modelCandidates(ctx, ci, d, &genErr), probe,
		func(idx int, s modelExtScan) (bool, error) {
			if !s.isModel {
				return true, nil
			}
			if s.anyExt {
				anyExt = true
			}
			if !s.universe {
				acc, universe = intersectTuples(acc, universe, s.acc)
			}
			if s.contained || within() {
				contained = true
				return false, nil
			}
			if !universe && len(acc) == 0 {
				if stopWithin != nil {
					contained = true
				}
				return false, nil
			}
			return true, nil
		})
	if err != nil {
		return nil, false, false, err
	}
	if !stopped && genErr != nil {
		return nil, false, false, genErr
	}
	return acc, contained, anyExt, nil
}

// rcdpWeak implements Theorem 5.1: undecidable for FO; for FP, CQ, UCQ
// and ∃FO+ the c-instance is weakly complete iff the certain answers
// over extensions are contained in the certain answers over Mod(T)
// (Lemma 5.2), or no extension exists at all. The certain answers over
// Mod(T) are computed first so the extension stream can stop as soon
// as containment is established.
func (p *Problem) rcdpWeak(ctx context.Context, ci *ctable.CInstance) (bool, error) {
	ctx, endSpan := p.span(ctx, "rcdp_weak")
	defer endSpan()
	g := p.beginOp(ctx, "rcdp_weak", "containment undecided after %d models")
	if p.Query.Lang() == FO {
		return false, fmt.Errorf("RCDP(FO), weak model: %w", ErrUndecidable)
	}
	certT, err := p.CertainAnswersCtx(ctx, ci) // ErrInconsistent when Mod(T) = ∅
	if err != nil {
		return false, err
	}
	inT := make(map[string]bool, len(certT))
	for _, t := range certT {
		inT[t.Key()] = true
	}
	certExt, contained, anyExt, err := p.certainExtStream(ctx, ci, inT)
	if err != nil {
		return false, g.wrap(err)
	}
	if !anyExt {
		// Every model of T is unextendable: weakly complete by
		// definition.
		return true, nil
	}
	if contained {
		return true, nil
	}
	for _, t := range certExt {
		if !inT[t.Key()] {
			return false, nil
		}
	}
	return true, nil
}

// RCQP decides the relatively complete query problem for c-instances:
// does any c-instance complete for Q relative to (Dm, V) exist?
//
// Weak model: trivially true for the monotone languages (Theorem 5.4);
// ErrOpen for FO. Strong and viable models coincide with the ground
// problem (Lemma 4.4 / Corollary 6.2) and are served by the bounded
// search in rcqp.go; FO and FP are undecidable there.
func (p *Problem) RCQP(m Model) (bool, error) {
	return p.RCQPCtx(context.Background(), m)
}

// RCQPCtx is RCQP honoring the context's deadline and cancellation; an
// abort surfaces as a *DeadlineError.
func (p *Problem) RCQPCtx(ctx context.Context, m Model) (bool, error) {
	switch m {
	case Weak:
		if p.Query.Lang() == FO {
			return false, fmt.Errorf("RCQP(FO), weak model, c-instances: %w", ErrOpen)
		}
		return true, nil
	default:
		return p.rcqpStrongOrViable(ctx, m)
	}
}

// RCQPGround is RCQP restricted to ground instances. In the weak model
// RCQP(FO) is undecidable for ground instances (Theorem 5.4), while
// the monotone languages remain trivially true.
func (p *Problem) RCQPGround(m Model) (bool, error) {
	return p.RCQPGroundCtx(context.Background(), m)
}

// RCQPGroundCtx is RCQPGround honoring the context's deadline.
func (p *Problem) RCQPGroundCtx(ctx context.Context, m Model) (bool, error) {
	switch m {
	case Weak:
		if p.Query.Lang() == FO {
			return false, fmt.Errorf("RCQP(FO), weak model, ground instances: %w", ErrUndecidable)
		}
		return true, nil
	default:
		// Lemma 4.4 / Corollary 6.2: the c-instance and ground problems
		// coincide in the strong and viable models.
		return p.rcqpStrongOrViable(ctx, m)
	}
}

// ConstructWeaklyComplete builds the constructive witness of the
// Theorem 5.4 proof: a maximal partially closed ground instance I0
// whose tuples draw values from the (typed) candidate lattice over the
// active domain. Every FP (hence CQ, UCQ, ∃FO+) query is weakly
// complete on I0 relative to (Dm, V).
func (p *Problem) ConstructWeaklyComplete() (*relation.Database, error) {
	return p.ConstructWeaklyCompleteCtx(context.Background())
}

// ConstructWeaklyCompleteCtx is ConstructWeaklyComplete honoring the
// context's deadline.
func (p *Problem) ConstructWeaklyCompleteCtx(ctx context.Context) (*relation.Database, error) {
	g := p.beginOp(ctx, "construct_weakly_complete", "")
	if !p.Query.Monotone() {
		return nil, fmt.Errorf("weakly complete witness for FO: %w", ErrUndecidable)
	}
	d, err := p.domainsFor(nil, false, true)
	if err != nil {
		return nil, err
	}
	db := relation.NewDatabaseWith(p.Schema, p.Master.Interner())
	// Greedy maximality: a tuple rejected now stays rejected forever
	// because CC violation is monotone in the data.
	for _, r := range p.Schema.Relations() {
		_, err := p.latticeOver(ctx, r, d, func(t relation.Tuple) (bool, error) {
			ext := db.WithTuple(r.Name, t)
			ok, err := p.satisfiesCCs(ctx, ext)
			if err != nil {
				return false, err
			}
			if ok {
				db = ext
			}
			return true, nil
		})
		if err != nil {
			return nil, g.wrap(err)
		}
	}
	return db, nil
}

// minpWeak implements Theorem 5.6. For CQ over a single-relation schema
// it uses the coDP characterisation of Lemma 5.7; otherwise it falls
// back to the generic algorithm (check T weakly complete, then check
// that no proper row subset is), which matches the Πp4 upper bound for
// UCQ/∃FO+ and coNEXPTIME for FP.
func (p *Problem) minpWeak(ctx context.Context, ci *ctable.CInstance) (bool, error) {
	ctx, endSpan := p.span(ctx, "minp_weak")
	defer endSpan()
	if p.Query.Lang() == FO {
		return false, fmt.Errorf("MINP(FO), weak model: %w", ErrUndecidable)
	}
	if p.Query.Lang() == CQ && p.Schema.Len() == 1 {
		return p.minpWeakCQ(ctx, ci)
	}
	return p.minpWeakGeneric(ctx, ci)
}

// minpWeakCQ is the Lemma 5.7 fast path: T is a minimal weakly complete
// instance iff either T is empty and ∅ ∈ RCQw, or ∅ ∉ RCQw, |T| = 1 and
// Mod(T) ≠ ∅.
func (p *Problem) minpWeakCQ(ctx context.Context, ci *ctable.CInstance) (bool, error) {
	emptyCI := ctable.NewCInstance(p.Schema)
	emptyComplete, err := p.rcdpWeak(ctx, emptyCI)
	if err != nil {
		return false, err
	}
	if ci.Size() == 0 {
		return emptyComplete, nil
	}
	if emptyComplete || ci.Size() != 1 {
		return false, nil
	}
	return p.ConsistentCtx(ctx, ci)
}

// minpWeakGeneric checks T ∈ RCQw and that no proper sub-c-instance
// (row subset) is weakly complete.
func (p *Problem) minpWeakGeneric(ctx context.Context, ci *ctable.CInstance) (bool, error) {
	g := p.beginOp(ctx, "minp_weak", "non-minimality undecided after %d models")
	complete, err := p.rcdpWeak(ctx, ci)
	if err != nil {
		return false, err
	}
	if !complete {
		return false, nil
	}
	rows := ci.AllRows()
	n := len(rows)
	if n == 0 {
		return true, nil
	}
	if p.Options.MaxSubsets > 0 && (n > 62 || 1<<uint(n) > p.Options.MaxSubsets) {
		subsets := int64(-1) // 2^n overflows past n = 62
		if n <= 62 {
			subsets = int64(1) << uint(n)
		}
		return false, p.budgetErr(fmt.Sprintf("MINP weak: 2^%d row subsets", n), "MaxSubsets",
			int64(p.Options.MaxSubsets), subsets)
	}
	for mask := 0; mask < (1 << uint(n)); mask++ {
		if err := ctx.Err(); err != nil {
			return false, g.wrap(err)
		}
		if mask == (1<<uint(n))-1 {
			continue // the full set is T itself
		}
		drop := map[ctable.RowRef]bool{}
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) == 0 {
				drop[rows[i]] = true
			}
		}
		sub := ci.WithoutRows(drop)
		subComplete, err := p.rcdpWeak(ctx, sub)
		if errors.Is(err, ErrInconsistent) {
			// An inconsistent sub-instance represents no database and
			// cannot witness non-minimality.
			continue
		}
		if err != nil {
			return false, err
		}
		if subComplete {
			return false, nil
		}
	}
	return true, nil
}
