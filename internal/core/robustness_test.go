package core

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"relcomplete/internal/fault"
	"relcomplete/internal/relation"
	"relcomplete/internal/search"
)

// Robustness suite: deadline propagation, panic containment and the
// deterministic fault-injection harness. The invariant under test is
// the graceful-degradation contract — a decider under injected faults,
// cancellation or panics returns either the fault-free verdict or a
// typed error (DeadlineError, BudgetError, ErrInjected, PanicError),
// never a wrong answer, a deadlock or a leaked goroutine.

// assertNoGoroutineLeak polls until the goroutine count returns to the
// baseline (plus slack for the runtime's own background goroutines),
// failing with a full stack dump if it does not settle.
func assertNoGoroutineLeak(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			m := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d live, baseline %d\n%s", n, base, buf[:m])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// runContained invokes fn with panic capture: injected panics on the
// sequential (non-search) paths propagate to the caller by design, and
// the chaos suite must treat them as contained typed failures.
func runContained(fn func() (bool, error)) (ok bool, err error, panicked any) {
	defer func() {
		if r := recover(); r != nil {
			panicked = r
		}
	}()
	ok, err = fn()
	return ok, err, nil
}

// chaosAcceptable reports whether err is a typed failure the chaos
// contract allows instead of the fault-free outcome.
func chaosAcceptable(err error) bool {
	if errors.Is(err, fault.ErrInjected) {
		return true
	}
	var pe *search.PanicError
	if errors.As(err, &pe) {
		_, isInjected := pe.Recovered.(fault.PanicValue)
		return isInjected
	}
	return errors.Is(err, ErrBudget) || errors.Is(err, ErrInconclusive) || errors.Is(err, ErrDeadline)
}

// chaosSeeds is the fixed seed matrix; RELCOMPLETE_CHAOS_SEED adds one
// more for reproducing a CI failure locally.
func chaosSeeds(t *testing.T) []int64 {
	seeds := []int64{11, 29, 53}
	if s := os.Getenv("RELCOMPLETE_CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("RELCOMPLETE_CHAOS_SEED: %v", err)
		}
		seeds = append(seeds, v)
	}
	return seeds
}

func TestChaosCorrectVerdictOrTypedError(t *testing.T) {
	base := runtime.NumGoroutine()
	probs := randomProblems(t, 909, 12)
	models := []Model{Strong, Weak, Viable}

	// Fault-free baselines, sequential (the reference execution).
	type verdict struct {
		ok  bool
		err error
	}
	baseline := make([][]verdict, len(probs))
	for i, rp := range probs {
		baseline[i] = make([]verdict, len(models))
		for j, m := range models {
			ok, err := rp.p.RCDP(rp.ci, m)
			baseline[i][j] = verdict{ok: ok, err: err}
		}
	}

	for _, seed := range chaosSeeds(t) {
		plan := fault.Chaos(seed)
		relation.SetFaultPlan(plan)
		for i, rp := range probs {
			rp.p.Options.FaultPlan = plan
			rp.p.Options.Parallelism = parWorkers
			for j, m := range models {
				label := fmt.Sprintf("seed %d case %d model %s", seed, i, m)
				want := baseline[i][j]
				got, err, panicked := runContained(func() (bool, error) {
					return rp.p.RCDP(rp.ci, m)
				})
				switch {
				case panicked != nil:
					// A panic that escaped the decider must be the
					// injected one, propagated from a sequential path.
					if _, isInjected := panicked.(fault.PanicValue); !isInjected {
						t.Fatalf("%s: foreign panic %v", label, panicked)
					}
				case err != nil:
					if chaosAcceptable(err) {
						break
					}
					// The fault-free error (e.g. ErrInconsistent) may
					// survive injection unchanged.
					if want.err != nil && errors.Is(err, ErrInconsistent) && errors.Is(want.err, ErrInconsistent) {
						break
					}
					t.Fatalf("%s: untyped error %v (baseline %v)", label, err, want.err)
				default:
					if want.err != nil {
						t.Fatalf("%s: clean verdict %v but baseline errored with %v", label, got, want.err)
					}
					if got != want.ok {
						t.Fatalf("%s: verdict %v under faults, fault-free %v", label, got, want.ok)
					}
				}
			}
			rp.p.Options.FaultPlan = nil
			rp.p.Options.Parallelism = 0
		}
		relation.SetFaultPlan(nil)
	}
	defer relation.SetFaultPlan(nil)
	assertNoGoroutineLeak(t, base)
}

func TestInjectedWorkerPanicContained(t *testing.T) {
	// A panic on every model probe must surface as a *search.PanicError
	// wrapping the injected PanicValue, at any worker count, with the
	// pool fully drained.
	base := runtime.NumGoroutine()
	for _, workers := range []int{1, parWorkers} {
		plan := fault.NewPlan(fault.Rule{Site: fault.SiteSearchWorker, Kind: fault.KindPanic})
		hit := false
		for i, rp := range randomProblems(t, 911, 8) {
			rp.p.Options.FaultPlan = plan
			rp.p.Options.Parallelism = workers
			_, err := rp.p.Consistent(rp.ci)
			rp.p.Options.FaultPlan = nil
			rp.p.Options.Parallelism = 0
			if err == nil {
				t.Fatalf("workers=%d case %d: no error despite a panicking probe", workers, i)
			}
			var pe *search.PanicError
			if errors.As(err, &pe) {
				if _, isInjected := pe.Recovered.(fault.PanicValue); !isInjected {
					t.Fatalf("workers=%d case %d: recovered %v, want the injected PanicValue", workers, i, pe.Recovered)
				}
				hit = true
				continue
			}
			// A problem whose candidate enumeration is empty fails with
			// ErrInconsistent before any probe runs.
			if !errors.Is(err, ErrInconsistent) {
				t.Fatalf("workers=%d case %d: %v", workers, i, err)
			}
		}
		if !hit {
			t.Fatalf("workers=%d: no instance exercised the panicking probe", workers)
		}
	}
	assertNoGoroutineLeak(t, base)
}

func TestInjectedEvalErrorIsTyped(t *testing.T) {
	// An error injected at the eval layer must reach the caller still
	// unwrapping to ErrInjected — no decider swallows or rewraps it
	// into a verdict.
	plan := fault.NewPlan(fault.Rule{Site: fault.SiteEvalAnswers, Kind: fault.KindError})
	found := false
	for i, rp := range randomProblems(t, 915, 8) {
		rp.p.Options.FaultPlan = plan
		_, err := rp.p.RCDP(rp.ci, Strong)
		rp.p.Options.FaultPlan = nil
		if err == nil {
			t.Fatalf("case %d: no error despite eval faults on every call", i)
		}
		if errors.Is(err, fault.ErrInjected) {
			found = true
			continue
		}
		if !errors.Is(err, ErrInconsistent) {
			t.Fatalf("case %d: untyped error %v", i, err)
		}
	}
	if !found {
		t.Fatal("no instance surfaced the injected eval error")
	}
}

func TestRelationProbeFaultDegradesGracefully(t *testing.T) {
	// An injected index-probe error demotes lookups to scans; verdicts
	// must be unchanged.
	probs := randomProblems(t, 916, 10)
	type verdict struct {
		ok  bool
		err error
	}
	baselines := make([]verdict, len(probs))
	for i, rp := range probs {
		ok, err := rp.p.RCDP(rp.ci, Weak)
		baselines[i] = verdict{ok: ok, err: err}
	}
	relation.SetFaultPlan(fault.NewPlan(fault.Rule{Site: fault.SiteRelationProbe, Kind: fault.KindError}))
	defer relation.SetFaultPlan(nil)
	for i, rp := range probs {
		ok, err := rp.p.RCDP(rp.ci, Weak)
		if (err == nil) != (baselines[i].err == nil) || (err == nil && ok != baselines[i].ok) {
			t.Fatalf("case %d: verdict (%v, %v) under probe faults, fault-free (%v, %v)",
				i, ok, err, baselines[i].ok, baselines[i].err)
		}
	}
}

func TestCancelledContextDeterministicAcrossWorkers(t *testing.T) {
	// A pre-cancelled context yields the same typed error — same
	// dynamic type, same op, same sentinels — at workers 1 and 8.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i, rp := range randomProblems(t, 910, 10) {
		for _, workers := range []int{1, parWorkers} {
			rp.p.Options.Parallelism = workers
			_, err := rp.p.ConsistentCtx(ctx, rp.ci)
			rp.p.Options.Parallelism = 0
			var de *DeadlineError
			if !errors.As(err, &de) {
				t.Fatalf("case %d workers=%d: want DeadlineError, got %v", i, workers, err)
			}
			if de.Op != "consistency" {
				t.Fatalf("case %d workers=%d: op %q, want consistency", i, workers, de.Op)
			}
			if !errors.Is(err, ErrDeadline) || !errors.Is(err, context.Canceled) {
				t.Fatalf("case %d workers=%d: sentinels missing from %v", i, workers, err)
			}
		}
	}
}

func TestMidflightCancellationNoWrongAnswerNoLeak(t *testing.T) {
	// Cancel concurrently with a workers=8 decision: the decider must
	// return either the fault-free verdict (it won the race) or a
	// DeadlineError — and every goroutine must drain either way.
	base := runtime.NumGoroutine()
	probs := randomProblems(t, 912, 15)
	type verdict struct {
		ok  bool
		err error
	}
	baselines := make([]verdict, len(probs))
	for i, rp := range probs {
		ok, err := rp.p.RCDP(rp.ci, Weak)
		baselines[i] = verdict{ok: ok, err: err}
	}
	for i, rp := range probs {
		ctx, cancel := context.WithCancel(context.Background())
		go func(d time.Duration) {
			time.Sleep(d)
			cancel()
		}(time.Duration(i*37) * time.Microsecond)
		rp.p.Options.Parallelism = parWorkers
		ok, err := rp.p.RCDPCtx(ctx, rp.ci, Weak)
		rp.p.Options.Parallelism = 0
		cancel()
		want := baselines[i]
		switch {
		case err == nil:
			if want.err != nil || ok != want.ok {
				t.Fatalf("case %d: verdict (%v, nil) under cancellation, fault-free (%v, %v)", i, ok, want.ok, want.err)
			}
		case errors.Is(err, ErrDeadline):
			// Cancellation won; the verdict stays unknown.
		case want.err != nil && errors.Is(err, ErrInconsistent) && errors.Is(want.err, ErrInconsistent):
			// Inconsistency detected before the cancel landed.
		default:
			t.Fatalf("case %d: unexpected error %v (baseline %v)", i, err, want.err)
		}
	}
	assertNoGoroutineLeak(t, base)
}

func TestDeadlineErrorDetail(t *testing.T) {
	rp := randomProblems(t, 913, 5)[0]

	// Cancellation: the cause sentinel is context.Canceled.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := rp.p.ConsistentCtx(ctx, rp.ci)
	var de *DeadlineError
	if !errors.As(err, &de) {
		t.Fatalf("want DeadlineError, got %v", err)
	}
	if de.Op != "consistency" || de.Partial == "" {
		t.Fatalf("incomplete detail: op=%q partial=%q", de.Op, de.Partial)
	}
	if !errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("wrong cause in %v", err)
	}

	// Expired deadline: the cause sentinel is DeadlineExceeded.
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel2()
	time.Sleep(time.Millisecond)
	_, err = rp.p.ConsistentCtx(ctx2, rp.ci)
	if !errors.As(err, &de) {
		t.Fatalf("want DeadlineError, got %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("wrong cause in %v", err)
	}
}

func TestContextFreeWrappersUnaffected(t *testing.T) {
	// The context-free methods are thin Background delegates: no
	// deadline machinery may engage, whatever the outcome.
	for i, rp := range randomProblems(t, 914, 10) {
		for _, m := range []Model{Strong, Weak, Viable} {
			_, err := rp.p.RCDP(rp.ci, m)
			if err != nil && errors.Is(err, ErrDeadline) {
				t.Fatalf("case %d model %s: deadline error without a deadline: %v", i, m, err)
			}
		}
	}
}
