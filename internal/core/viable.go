package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"relcomplete/internal/ctable"
	"relcomplete/internal/relation"
	"relcomplete/internal/search"
)

// This file implements the viable completeness model (Section 6):
// RCDPv (Theorem 6.1, Σp3-complete for CQ/UCQ/∃FO+) asks whether SOME
// valuation of the c-instance yields a relatively complete ground
// instance; MINPv (Corollary 6.3) whether some valuation yields a
// minimal complete ground instance. FO and FP are undecidable, and
// RCQPv coincides with RCQPs (Corollary 6.2). Both deciders fan the
// per-model checks out over Options.Parallelism workers; the first-hit
// engine keeps the verdicts identical to the sequential scan.

// rcdpViable checks whether some I ∈ ModAdom(T, Dm, V) is complete for
// Q relative to (Dm, V); on failure it reports the counterexample of
// the last model inspected (every model fails, so any is informative —
// the highest-index one is what the sequential scan ends on, and the
// failure path probes every model in either schedule, so the choice is
// deterministic).
func (p *Problem) rcdpViable(ctx context.Context, ci *ctable.CInstance) (bool, *Counterexample, error) {
	ctx, endSpan := p.span(ctx, "rcdp_viable")
	defer endSpan()
	g := p.beginOp(ctx, "rcdp_viable", "no complete model found in %d models")
	switch p.Query.Lang() {
	case FO, FP:
		return false, nil, fmt.Errorf("RCDP(%s), viable model: %w", p.Query.Lang(), ErrUndecidable)
	}
	d, err := p.domainsFor(ci, true, false)
	if err != nil {
		return false, nil, err
	}
	var consistent atomic.Bool
	var genErr error
	var mu sync.Mutex
	lastIdx := -1
	var lastCex *Counterexample
	probe := func(ctx context.Context, idx int, db *relation.Database) (struct{}, bool, error) {
		ok, err := p.checkModel(ctx, db)
		if err != nil {
			return struct{}{}, false, err
		}
		if !ok {
			return struct{}{}, false, nil
		}
		consistent.Store(true)
		cex, err := p.boundedCounterexample(ctx, db, d)
		if err != nil {
			return struct{}{}, false, err
		}
		if cex == nil {
			return struct{}{}, true, nil
		}
		mu.Lock()
		if idx > lastIdx {
			lastIdx, lastCex = idx, cex
		}
		mu.Unlock()
		return struct{}{}, false, nil
	}
	_, viable, err := search.FirstHit(ctx, p.Options.workers(), p.Options.Obs,
		p.modelCandidates(ctx, ci, d, &genErr), probe)
	if err != nil {
		return false, nil, g.wrap(err)
	}
	if !viable && genErr != nil {
		return false, nil, g.wrap(genErr)
	}
	if !consistent.Load() {
		return false, nil, ErrInconsistent
	}
	if viable {
		return true, nil, nil
	}
	return false, lastCex, nil
}

// minpViable implements Corollary 6.3: T is a minimal viably complete
// c-instance iff some I ∈ ModAdom(T) is a minimal complete ground
// instance.
func (p *Problem) minpViable(ctx context.Context, ci *ctable.CInstance) (bool, error) {
	ctx, endSpan := p.span(ctx, "minp_viable")
	defer endSpan()
	g := p.beginOp(ctx, "minp_viable", "no minimal complete model found in %d models")
	switch p.Query.Lang() {
	case FO, FP:
		return false, fmt.Errorf("MINP(%s), viable model: %w", p.Query.Lang(), ErrUndecidable)
	}
	d, err := p.domainsFor(ci, true, false)
	if err != nil {
		return false, err
	}
	var consistent atomic.Bool
	var genErr error
	probe := func(ctx context.Context, idx int, db *relation.Database) (struct{}, bool, error) {
		ok, err := p.checkModel(ctx, db)
		if err != nil {
			return struct{}{}, false, err
		}
		if !ok {
			return struct{}{}, false, nil
		}
		consistent.Store(true)
		cex, err := p.boundedCounterexample(ctx, db, d)
		if err != nil {
			return struct{}{}, false, err
		}
		if cex != nil {
			return struct{}{}, false, nil // this model is not even complete
		}
		nonMin, err := p.hasCompleteRemoval(ctx, db, d)
		if err != nil {
			return struct{}{}, false, err
		}
		return struct{}{}, !nonMin, nil
	}
	_, found, err := search.FirstHit(ctx, p.Options.workers(), p.Options.Obs,
		p.modelCandidates(ctx, ci, d, &genErr), probe)
	if err != nil {
		return false, g.wrap(err)
	}
	if !found && genErr != nil {
		return false, g.wrap(genErr)
	}
	if !consistent.Load() {
		return false, ErrInconsistent
	}
	return found, nil
}
