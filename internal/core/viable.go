package core

import (
	"fmt"

	"relcomplete/internal/ctable"
	"relcomplete/internal/relation"
)

// This file implements the viable completeness model (Section 6):
// RCDPv (Theorem 6.1, Σp3-complete for CQ/UCQ/∃FO+) asks whether SOME
// valuation of the c-instance yields a relatively complete ground
// instance; MINPv (Corollary 6.3) whether some valuation yields a
// minimal complete ground instance. FO and FP are undecidable, and
// RCQPv coincides with RCQPs (Corollary 6.2).

// rcdpViable checks whether some I ∈ ModAdom(T, Dm, V) is complete for
// Q relative to (Dm, V); on failure it reports the counterexample of
// the last model inspected (every model fails, so any is informative).
func (p *Problem) rcdpViable(ci *ctable.CInstance) (bool, *Counterexample, error) {
	switch p.Query.Lang() {
	case FO, FP:
		return false, nil, fmt.Errorf("RCDP(%s), viable model: %w", p.Query.Lang(), ErrUndecidable)
	}
	d, err := p.domainsFor(ci, true, false)
	if err != nil {
		return false, nil, err
	}
	consistent := false
	viable := false
	var lastCex *Counterexample
	err = p.forEachModel(ci, d, func(db *relation.Database, mu ctable.Valuation) (bool, error) {
		consistent = true
		cex, err := p.boundedCounterexample(db, d)
		if err != nil {
			return false, err
		}
		if cex == nil {
			viable = true
			return false, nil
		}
		lastCex = cex
		return true, nil
	})
	if err != nil {
		return false, nil, err
	}
	if !consistent {
		return false, nil, ErrInconsistent
	}
	if viable {
		return true, nil, nil
	}
	return false, lastCex, nil
}

// minpViable implements Corollary 6.3: T is a minimal viably complete
// c-instance iff some I ∈ ModAdom(T) is a minimal complete ground
// instance.
func (p *Problem) minpViable(ci *ctable.CInstance) (bool, error) {
	switch p.Query.Lang() {
	case FO, FP:
		return false, fmt.Errorf("MINP(%s), viable model: %w", p.Query.Lang(), ErrUndecidable)
	}
	d, err := p.domainsFor(ci, true, false)
	if err != nil {
		return false, err
	}
	consistent := false
	found := false
	err = p.forEachModel(ci, d, func(db *relation.Database, mu ctable.Valuation) (bool, error) {
		consistent = true
		cex, err := p.boundedCounterexample(db, d)
		if err != nil {
			return false, err
		}
		if cex != nil {
			return true, nil // this model is not even complete
		}
		nonMin, err := p.hasCompleteRemoval(db, d)
		if err != nil {
			return false, err
		}
		if !nonMin {
			found = true
			return false, nil
		}
		return true, nil
	})
	if err != nil {
		return false, err
	}
	if !consistent {
		return false, ErrInconsistent
	}
	return found, nil
}
