package core

import (
	"context"
	"fmt"
	"sort"

	"relcomplete/internal/adom"
	"relcomplete/internal/ctable"
	"relcomplete/internal/query"
	"relcomplete/internal/relation"
)

// Typed domains: a sound pruning of the active domain.
//
// The paper's procedures valuate every variable over the whole Adom.
// Most of those valuations are indistinguishable: a value can influence
// a CC check, a query answer or a condition only through the column
// positions it occupies, and two positions interact only when some CC,
// query, FP rule or c-table condition syntactically links them (a
// shared variable, a comparison, or the elementwise correspondence of
// a CC's two heads). Partitioning positions into such compatibility
// classes and restricting each variable and lattice column to
//
//	constants observed at its class ∪ unattributable constants ∪
//	the class's fresh values
//
// preserves every verdict: for any valuation outside the restriction,
// remapping each out-of-class value to a class-fresh value (injectively
// per class, preserving within-class equality) yields a valuation
// inside it, and no CC/query/condition can tell the two apart because
// any observation of a dropped equality would require a syntactic link
// between the classes — which would have merged them. The construction
// errs on the side of merging and of attributing constants broadly, so
// over-approximation only enlarges candidate sets.
//
// Options.NoTypedDomains disables the pruning (every enumeration falls
// back to the full Adom); the test-suite runs both paths differentially.

// position identifies one column of a data, master or IDB relation.
type position struct {
	rel string
	col int
}

// typing is the computed partition with per-class candidate values.
type typing struct {
	class  map[position]int
	consts []*relation.ValueSet // per class
	global *relation.ValueSet   // constants attributed to no class
	fresh  [][]relation.Value   // per class fresh values
	every  []relation.Value     // fresh values available to all classes
}

// unionFind over interned position ids.
type unionFind struct {
	id     map[position]int
	parent []int
}

func newUnionFind() *unionFind { return &unionFind{id: map[position]int{}} }

func (u *unionFind) intern(p position) int {
	if i, ok := u.id[p]; ok {
		return i
	}
	i := len(u.parent)
	u.id[p] = i
	u.parent = append(u.parent, i)
	return i
}

func (u *unionFind) find(i int) int {
	for u.parent[i] != i {
		u.parent[i] = u.parent[u.parent[i]]
		i = u.parent[i]
	}
	return i
}

func (u *unionFind) union(a, b position) {
	ra, rb := u.find(u.intern(a)), u.find(u.intern(b))
	u.parent[ra] = rb
}

// varSites records, per variable name, the positions it occupies within
// one linking scope (a query, a CC side pair, a rule).
type varSites map[string][]position

func (vs varSites) add(v string, p position) { vs[v] = append(vs[v], p) }

// computeTyping builds the typed domains for this problem and
// c-instance over the already-built Adom (whose fresh values are
// reused). It returns nil when typing is disabled.
func (p *Problem) computeTyping(ci *ctable.CInstance, a *adom.Adom) (*typing, error) {
	if p.Options.NoTypedDomains {
		return nil, nil
	}
	uf := newUnionFind()
	// Constants with the positions they were observed at; position nil
	// (ok=false) means unattributable.
	type constObs struct {
		v   relation.Value
		at  position
		has bool
	}
	var obs []constObs
	observe := func(v relation.Value, at position) { obs = append(obs, constObs{v: v, at: at, has: true}) }
	observeGlobal := func(v relation.Value) { obs = append(obs, constObs{v: v}) }

	// linkFormula walks a formula, interning positions, linking
	// positions shared by a variable, linking compared variables'
	// positions, and attributing constants. It returns the sites map so
	// callers can link across formulas (CC head correspondence).
	var linkFormula func(f query.Formula, sites varSites) error
	linkFormula = func(f query.Formula, sites varSites) error {
		switch x := f.(type) {
		case *query.Atom:
			for i, t := range x.Terms {
				pos := position{rel: x.Rel, col: i}
				uf.intern(pos)
				if t.IsVar {
					sites.add(t.Name, pos)
				} else {
					observe(t.Const, pos)
				}
			}
		case *query.Compare:
			switch {
			case x.L.IsVar && x.R.IsVar:
				// Link the two variables' sites after the walk; record
				// through a synthetic shared pseudo-site.
				pseudo := position{rel: "·cmp·" + x.L.Name + "·" + x.R.Name, col: 0}
				uf.intern(pseudo)
				sites.add(x.L.Name, pseudo)
				sites.add(x.R.Name, pseudo)
			case x.L.IsVar && !x.R.IsVar:
				pseudo := position{rel: "·cc·" + x.L.Name, col: 0}
				uf.intern(pseudo)
				sites.add(x.L.Name, pseudo)
				observe(x.R.Const, pseudo)
			case !x.L.IsVar && x.R.IsVar:
				pseudo := position{rel: "·cc·" + x.R.Name, col: 0}
				uf.intern(pseudo)
				sites.add(x.R.Name, pseudo)
				observe(x.L.Const, pseudo)
			default:
				observeGlobal(x.L.Const)
				observeGlobal(x.R.Const)
			}
		case *query.And:
			for _, k := range x.Kids {
				if err := linkFormula(k, sites); err != nil {
					return err
				}
			}
		case *query.Or:
			for _, k := range x.Kids {
				if err := linkFormula(k, sites); err != nil {
					return err
				}
			}
		case *query.Not:
			return linkFormula(x.Sub, sites)
		case *query.Exists:
			return linkFormula(x.Sub, sites)
		case *query.Forall:
			return linkFormula(x.Sub, sites)
		}
		return nil
	}
	linkSites := func(sites varSites) {
		for _, ps := range sites {
			for i := 1; i < len(ps); i++ {
				uf.union(ps[0], ps[i])
			}
		}
	}
	// headSites returns, per head index, a representative site list.
	headSites := func(q *query.Query, sites varSites) [][]position {
		out := make([][]position, len(q.Head))
		for i, h := range q.Head {
			if h.IsVar {
				out[i] = sites[h.Name]
			} else {
				// A constant head is attributed when the other side
				// provides positions; collected by the caller.
				out[i] = nil
			}
		}
		return out
	}

	// Data and master schema positions exist even when unmentioned.
	for _, r := range p.Schema.Relations() {
		for i := 0; i < r.Arity(); i++ {
			uf.intern(position{rel: r.Name, col: i})
		}
	}
	for _, r := range p.Master.Schema().Relations() {
		for i := 0; i < r.Arity(); i++ {
			uf.intern(position{rel: r.Name, col: i})
		}
	}

	// CCs: walk both sides, link shared-variable sites per side, then
	// link the two heads elementwise (q(x⃗) ⊆ p(x⃗) compares column i of
	// the left answers with column i of the right answers).
	if p.CCs != nil {
		for _, c := range p.CCs.Constraints {
			left, right := varSites{}, varSites{}
			if err := linkFormula(c.Left.Body, left); err != nil {
				return nil, err
			}
			if err := linkFormula(c.Right.Body, right); err != nil {
				return nil, err
			}
			linkSites(left)
			linkSites(right)
			lh, rh := headSites(c.Left, left), headSites(c.Right, right)
			for i := range lh {
				var all []position
				all = append(all, lh[i]...)
				all = append(all, rh[i]...)
				for j := 1; j < len(all); j++ {
					uf.union(all[0], all[j])
				}
				// Constant heads: attribute to the other side's sites.
				if !c.Left.Head[i].IsVar && len(rh[i]) > 0 {
					observe(c.Left.Head[i].Const, rh[i][0])
				}
				if !c.Right.Head[i].IsVar && len(lh[i]) > 0 {
					observe(c.Right.Head[i].Const, lh[i][0])
				}
				if !c.Left.Head[i].IsVar && len(rh[i]) == 0 {
					observeGlobal(c.Left.Head[i].Const)
				}
				if !c.Right.Head[i].IsVar && len(lh[i]) == 0 {
					observeGlobal(c.Right.Head[i].Const)
				}
			}
		}
	}

	// The query: calculus formula, or FP rules (IDB predicates become
	// pseudo-relations whose positions link through the rules).
	qVarClassSites := varSites{}
	if p.Query.Calc != nil {
		if err := linkFormula(p.Query.Calc.Body, qVarClassSites); err != nil {
			return nil, err
		}
		linkSites(qVarClassSites)
		for _, h := range p.Query.Calc.Head {
			if !h.IsVar {
				observeGlobal(h.Const)
			}
		}
	}
	if p.Query.Prog != nil {
		for _, r := range p.Query.Prog.Rules {
			sites := varSites{}
			for i, t := range r.Head.Terms {
				pos := position{rel: "·idb·" + r.Head.Rel, col: i}
				uf.intern(pos)
				if t.IsVar {
					sites.add(t.Name, pos)
				} else {
					observe(t.Const, pos)
				}
			}
			for _, l := range r.Body {
				if l.Atom != nil {
					rel := l.Atom.Rel
					if p.Query.Prog.IsIDB(rel) {
						rel = "·idb·" + rel
					}
					for i, t := range l.Atom.Terms {
						pos := position{rel: rel, col: i}
						uf.intern(pos)
						if t.IsVar {
							sites.add(t.Name, pos)
						} else {
							observe(t.Const, pos)
						}
					}
				}
				if l.Cmp != nil {
					if err := linkFormula(l.Cmp, sites); err != nil {
						return nil, err
					}
				}
			}
			linkSites(sites)
		}
	}

	// The c-instance: variables occupying several columns link them;
	// conditions link or attribute.
	ciVarSites := varSites{}
	if ci != nil {
		for _, rname := range ci.Schema().Names() {
			tb := ci.Table(rname)
			for _, row := range tb.Rows() {
				for i, t := range row.Terms {
					pos := position{rel: rname, col: i}
					if t.IsVar {
						ciVarSites.add(t.Name, pos)
					} else {
						observe(t.Const, pos)
					}
				}
				for _, atom := range row.Cond {
					cmp := &query.Compare{Op: atom.Op, L: atom.L, R: atom.R}
					if err := linkFormula(cmp, ciVarSites); err != nil {
						return nil, err
					}
				}
			}
		}
		linkSites(ciVarSites)
	}

	// Master data values belong to their columns' classes.
	for _, r := range p.Master.Schema().Relations() {
		for _, t := range p.Master.Relation(r.Name).Tuples() {
			for i, v := range t {
				observe(v, position{rel: r.Name, col: i})
			}
		}
	}

	// Materialise classes.
	ty := &typing{class: map[position]int{}, global: relation.NewValueSet()}
	classOf := map[int]int{}
	for pos, id := range uf.id {
		root := uf.find(id)
		cl, ok := classOf[root]
		if !ok {
			cl = len(ty.consts)
			classOf[root] = cl
			ty.consts = append(ty.consts, relation.NewValueSet())
			ty.fresh = append(ty.fresh, nil)
		}
		ty.class[pos] = cl
	}
	for _, o := range obs {
		if !o.has {
			ty.global.Add(o.v)
			continue
		}
		cl, ok := ty.class[o.at]
		if !ok {
			ty.global.Add(o.v)
			continue
		}
		ty.consts[cl].Add(o.v)
	}

	// Fresh values: a variable's personal pair goes to its class; the
	// synthetic extension-row pairs (and any fresh value we cannot
	// place) go everywhere.
	placeFresh := func(name string, sites []position) {
		f := a.Fresh(name)
		if f == "" {
			return
		}
		pair := []relation.Value{f}
		if twin := freshTwin(a, f); twin != "" {
			pair = append(pair, twin)
		}
		placed := false
		for _, pos := range sites {
			if cl, ok := ty.class[pos]; ok {
				ty.fresh[cl] = append(ty.fresh[cl], pair...)
				placed = true
				break // sites are same-class after linking
			}
		}
		if !placed {
			ty.every = append(ty.every, pair...)
		}
	}
	if ci != nil {
		for _, v := range ci.Vars() {
			placeFresh(v, ciVarSites[v])
		}
	}
	if p.Query.Calc != nil && query.IsPositiveExistential(p.Query.Calc) {
		tabs, err := p.disjunctTableaux()
		if err == nil {
			// Tableau variables are the renamed originals; their sites
			// are recoverable directly from the tableau atoms.
			for _, tab := range tabs {
				siteOf := varSites{}
				for _, atom := range tab.Atoms {
					for i, t := range atom.Terms {
						if t.IsVar {
							siteOf.add(t.Name, position{rel: atom.Rel, col: i})
						}
					}
				}
				for _, v := range tab.Vars {
					placeFresh(v, siteOf[v])
				}
			}
		}
	}
	// Extension-row fresh values serve every class — but only as many
	// as a single constructed tuple can need: the maximum number of
	// same-class columns within one relation, plus one twin for the
	// certain-answer cancellation. More would only bloat candidate
	// sets; values may be shared across classes because cross-class
	// equalities are unobservable by construction.
	width := 1
	for _, r := range p.Schema.Relations() {
		perClass := map[int]int{}
		for i := 0; i < r.Arity(); i++ {
			if cl, ok := ty.class[position{rel: r.Name, col: i}]; ok {
				perClass[cl]++
				if perClass[cl] > width {
					width = perClass[cl]
				}
			}
		}
	}
	for i := 0; i <= width; i++ {
		f := a.Fresh(fmt.Sprintf("xrow%d", i))
		if f == "" {
			break
		}
		ty.every = append(ty.every, f)
		if twin := freshTwin(a, f); twin != "" {
			ty.every = append(ty.every, twin)
		}
	}
	return ty, nil
}

// freshTwin recovers the twin minted alongside a fresh value: the
// builder appends ʹ to the variable name for the twin.
func freshTwin(a *adom.Adom, f relation.Value) relation.Value {
	// The twin is not exposed by name; it is f with ʹ inserted before
	// any disambiguation suffix. Builder mints "•name" and "•nameʹ".
	candidate := f + "ʹ"
	if a.Contains(candidate) {
		return candidate
	}
	return ""
}

// candidatesAt returns the candidate values for one column position
// under the typing (nil typing = the full domain).
func (ty *typing) candidatesAt(pos position, dom *relation.Domain, a *adom.Adom) []relation.Value {
	if dom.IsFinite() {
		return dom.Values()
	}
	if ty == nil {
		return a.Values()
	}
	set := relation.NewValueSet()
	if cl, ok := ty.class[pos]; ok {
		set.AddAll(ty.consts[cl])
		for _, f := range ty.fresh[cl] {
			set.Add(f)
		}
	}
	set.AddAll(ty.global)
	for _, f := range ty.every {
		set.Add(f)
	}
	return set.Values()
}

// varCandidates returns the candidate values for a c-instance variable:
// the intersection semantics of multiple sites reduces to any one site
// (same class after linking); finite attribute domains win outright.
func (ty *typing) varCandidates(name string, sites []position, dom *relation.Domain, a *adom.Adom) []relation.Value {
	if dom.IsFinite() {
		return dom.Values()
	}
	if ty == nil || len(sites) == 0 {
		return a.Values()
	}
	return ty.candidatesAt(sites[0], dom, a)
}

// ciVarSites recomputes the (already linked) sites of each c-instance
// variable for candidate lookup.
func ciVarSiteMap(ci *ctable.CInstance) map[string][]position {
	out := map[string][]position{}
	if ci == nil {
		return out
	}
	for _, rname := range ci.Schema().Names() {
		tb := ci.Table(rname)
		for _, row := range tb.Rows() {
			for i, t := range row.Terms {
				if t.IsVar {
					out[t.Name] = append(out[t.Name], position{rel: rname, col: i})
				}
			}
		}
	}
	return out
}

// enumerateTyped enumerates valuations of vars where each variable
// ranges over its typed candidates; budget and early stop as in
// adom.Enumerate.
func (p *Problem) enumerateTyped(ci *ctable.CInstance, a *adom.Adom, ty *typing,
	fn func(ctable.Valuation) (bool, error)) error {
	vars := ci.Vars()
	doms := ci.VarDomains()
	sites := ciVarSiteMap(ci)
	cands := make([][]relation.Value, len(vars))
	for i, v := range vars {
		cands[i] = ty.varCandidates(v, sites[v], doms[v], a)
	}
	mu := make(ctable.Valuation, len(vars))
	tried := 0
	var rec func(i int) (bool, error)
	rec = func(i int) (bool, error) {
		if i == len(vars) {
			tried++
			if p.Options.MaxValuations > 0 && tried > p.Options.MaxValuations {
				return false, p.budgetErr("typed valuation enumeration", "MaxValuations",
					int64(p.Options.MaxValuations), int64(tried))
			}
			return fn(mu)
		}
		for _, val := range cands[i] {
			mu[vars[i]] = val
			cont, err := rec(i + 1)
			if err != nil || !cont {
				return cont, err
			}
		}
		delete(mu, vars[i])
		return true, nil
	}
	_, err := rec(0)
	return err
}

// typedTuplesOver enumerates the candidate lattice of one relation
// under the typing, consulting the context per leaf.
func (p *Problem) typedTuplesOver(ctx context.Context, r *relation.Schema, a *adom.Adom, ty *typing,
	fn func(t relation.Tuple) (bool, error)) (bool, error) {
	cols := make([][]relation.Value, r.Arity())
	for i := range cols {
		cols[i] = ty.candidatesAt(position{rel: r.Name, col: i}, r.DomainAt(i), a)
	}
	t := make(relation.Tuple, r.Arity())
	tried := 0
	var rec func(i int) (bool, error)
	rec = func(i int) (bool, error) {
		if i == r.Arity() {
			if err := ctx.Err(); err != nil {
				return false, err
			}
			tried++
			if p.Options.MaxValuations > 0 && tried > p.Options.MaxValuations {
				return false, p.budgetErr("typed tuple lattice over "+r.Name, "MaxValuations",
					int64(p.Options.MaxValuations), int64(tried))
			}
			return fn(t.Clone())
		}
		for _, v := range cols[i] {
			t[i] = v
			cont, err := rec(i + 1)
			if err != nil || !cont {
				return cont, err
			}
		}
		return true, nil
	}
	return rec(0)
}

// typingSignature canonically serialises the per-column candidates so
// lattice caches can key on them.
func (p *Problem) typingSignature(a *adom.Adom, ty *typing) string {
	if ty == nil {
		return "untyped|" + adomSignature(a)
	}
	var parts []string
	for _, r := range p.Schema.Relations() {
		for i := 0; i < r.Arity(); i++ {
			vals := ty.candidatesAt(position{rel: r.Name, col: i}, r.DomainAt(i), a)
			s := r.Name + "." + fmt.Sprint(i) + ":"
			for _, v := range vals {
				s += fmt.Sprintf("%d:%s;", len(v), v)
			}
			parts = append(parts, s)
		}
	}
	sort.Strings(parts)
	out := "typed|"
	for _, s := range parts {
		out += s + "|"
	}
	return out
}
