package core

// Cross-model property tests on randomised problems: the structural
// relationships the paper states in Section 2.2 must hold on every
// input, independently of the specific decider code paths.

import (
	"context"
	"errors"
	"testing"

	"relcomplete/internal/ctable"
	"relcomplete/internal/relation"
)

func TestPropertyStrongImpliesWeakAndViable(t *testing.T) {
	// Section 2.2 observation (a): strong ⇒ weak and strong ⇒ viable.
	for i, rp := range randomProblems(t, 777, 80) {
		strong, err := rp.p.RCDP(rp.ci, Strong)
		if errors.Is(err, ErrInconsistent) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if !strong {
			continue
		}
		weak, err := rp.p.RCDP(rp.ci, Weak)
		if err != nil {
			t.Fatal(err)
		}
		viable, err := rp.p.RCDP(rp.ci, Viable)
		if err != nil {
			t.Fatal(err)
		}
		if !weak || !viable {
			t.Fatalf("case %d: strong but weak=%v viable=%v\nquery: %s\nci: %v\nmaster: %v",
				i, weak, viable, rp.p.Query, rp.ci, rp.p.Master)
		}
	}
}

func TestPropertyGroundStrongEqualsViable(t *testing.T) {
	// Section 2.2 observation (b): for ground instances, strongly
	// complete ⟺ viably complete ⟺ relatively complete.
	for i, rp := range randomProblems(t, 888, 80) {
		if !rp.ci.IsGround() {
			continue
		}
		strong, err1 := rp.p.RCDP(rp.ci, Strong)
		viable, err2 := rp.p.RCDP(rp.ci, Viable)
		if errors.Is(err1, ErrInconsistent) && errors.Is(err2, ErrInconsistent) {
			continue
		}
		if err1 != nil || err2 != nil {
			t.Fatalf("case %d: %v / %v", i, err1, err2)
		}
		if strong != viable {
			t.Fatalf("case %d: ground strong=%v viable=%v", i, strong, viable)
		}
	}
}

func TestPropertyCertainAnswersSoundness(t *testing.T) {
	// Every certain answer must be an answer in every model, and the
	// certain answers over extensions must contain the certain answers
	// over models (monotone queries).
	for i, rp := range randomProblems(t, 999, 60) {
		certT, err := rp.p.CertainAnswers(rp.ci)
		if errors.Is(err, ErrInconsistent) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		models, err := rp.p.Models(rp.ci, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, db := range models {
			ans, err := rp.p.answers(context.Background(), db)
			if err != nil {
				t.Fatal(err)
			}
			have := map[string]bool{}
			for _, a := range ans {
				have[a.Key()] = true
			}
			for _, c := range certT {
				if !have[c.Key()] {
					t.Fatalf("case %d: certain answer %v missing from model %v", i, c, db)
				}
			}
		}
		certExt, anyExt, err := rp.p.CertainAnswersOfExtensions(rp.ci)
		if err != nil {
			t.Fatal(err)
		}
		if !anyExt {
			continue
		}
		// By monotonicity certT ⊆ certExt.
		inExt := map[string]bool{}
		for _, c := range certExt {
			inExt[c.Key()] = true
		}
		for _, c := range certT {
			if !inExt[c.Key()] {
				t.Fatalf("case %d: certT %v not in certExt %v", i, certT, certExt)
			}
		}
	}
}

func TestPropertyMinimalImpliesComplete(t *testing.T) {
	// A minimal complete instance is in particular complete.
	for i, rp := range randomProblems(t, 1111, 60) {
		for _, m := range []Model{Strong, Weak, Viable} {
			minimal, err := rp.p.MINP(rp.ci, m)
			if errors.Is(err, ErrInconsistent) {
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			if !minimal {
				continue
			}
			complete, err := rp.p.RCDP(rp.ci, m)
			if err != nil {
				t.Fatal(err)
			}
			if !complete {
				t.Fatalf("case %d model %v: minimal but not complete", i, m)
			}
		}
	}
}

func TestPropertyRowOrderIrrelevant(t *testing.T) {
	// The deciders must not depend on row insertion order.
	for i, rp := range randomProblems(t, 2222, 40) {
		rows := rp.ci.AllRows()
		if len(rows) < 2 {
			continue
		}
		// Rebuild the c-instance with rows reversed.
		rev := ctable.NewCInstance(rp.ci.Schema())
		for j := len(rows) - 1; j >= 0; j-- {
			rev.MustAddRow(rows[j].Rel, rp.ci.Table(rows[j].Rel).Rows()[rows[j].Index])
		}
		for _, m := range []Model{Strong, Weak, Viable} {
			a, err1 := rp.p.RCDP(rp.ci, m)
			b, err2 := rp.p.RCDP(rev, m)
			if errors.Is(err1, ErrInconsistent) || errors.Is(err2, ErrInconsistent) {
				if !errors.Is(err1, ErrInconsistent) || !errors.Is(err2, ErrInconsistent) {
					t.Fatalf("case %d model %v: consistency differs across row order", i, m)
				}
				continue
			}
			if err1 != nil || err2 != nil {
				t.Fatalf("case %d model %v: %v / %v", i, m, err1, err2)
			}
			if a != b {
				t.Fatalf("case %d model %v: verdict depends on row order (%v vs %v)", i, m, a, b)
			}
		}
	}
}

func TestPropertyCompleteSurvivesCompleteExtension(t *testing.T) {
	// If a ground instance is complete and I ∪ {t} is a partially
	// closed extension, then Q(I) = Q(I ∪ {t}) — directly from the
	// definition; exercised through the decider plus the extension
	// enumerator.
	for i, rp := range randomProblems(t, 3333, 40) {
		db, err := rp.p.AnyModel(rp.ci)
		if err != nil {
			t.Fatal(err)
		}
		if db == nil {
			continue
		}
		complete, _, err := rp.p.GroundComplete(db)
		if err != nil {
			t.Fatal(err)
		}
		if !complete {
			continue
		}
		d, err := rp.p.domainsFor(ctable.FromDatabase(db), false, true)
		if err != nil {
			t.Fatal(err)
		}
		err = rp.p.forEachSingleTupleExtension(context.Background(), db, d,
			func(ext *relation.Database, rel string, tup relation.Tuple) (bool, error) {
				same, err := rp.p.sameAnswers(context.Background(), db, ext)
				if err != nil {
					return false, err
				}
				if !same {
					t.Fatalf("case %d: complete instance changed answers on extension %s%v", i, rel, tup)
				}
				return true, nil
			})
		if err != nil {
			t.Fatal(err)
		}
	}
}
