package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"relcomplete/internal/obs"
)

// TestObsCountersRCDP checks that a strong RCDP run populates the
// solver counters and phase timings through Options.Obs.
func TestObsCountersRCDP(t *testing.T) {
	s := newBoundedScenario(t, "1", "2")
	m := obs.NewMetrics()
	s.p.Options.Obs = m
	ok, err := s.p.RCDP(s.ground("1"), Strong)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("{(1)} is not strongly complete")
	}
	st := m.Snapshot()
	for _, c := range []string{
		"valuations_enumerated", "models_checked", "models_admitted",
		"cc_checks", "extensions_tested", "counterexamples_found",
	} {
		if st.Counters[c] == 0 {
			t.Errorf("counter %s = 0, want > 0 (%v)", c, st.Counters)
		}
	}
	found := false
	for _, ph := range st.Phases {
		if ph.Name == "rcdp_strong" && ph.Count == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("phase rcdp_strong missing: %v", st.Phases)
	}
}

// TestObsNilMetricsSafe runs a decider with no Obs/Trace attached —
// the nil receivers must be inert, not panic.
func TestObsNilMetricsSafe(t *testing.T) {
	s := newBoundedScenario(t, "1", "2")
	if s.p.Options.Obs != nil || s.p.Options.Trace != nil {
		t.Fatal("scenario should start uninstrumented")
	}
	if _, err := s.p.RCDP(s.withVar("x"), Viable); err != nil {
		t.Fatal(err)
	}
}

// TestObsTraceEvents checks the decision trace of a failing strong
// RCDP run: it must record the decide/verdict bracket, the admitted
// model, and the counterexample extension.
func TestObsTraceEvents(t *testing.T) {
	s := newBoundedScenario(t, "1", "2")
	sink := &obs.CollectSink{}
	s.p.Options.Trace = obs.NewTracer(sink)
	s.p.Options.Parallelism = 1
	ok, cex, err := s.p.RCDPExplain(s.ground("1"), Strong)
	if err != nil {
		t.Fatal(err)
	}
	if ok || cex == nil {
		t.Fatalf("ok=%v cex=%v, want failing run with counterexample", ok, cex)
	}
	kinds := sink.Kinds()
	has := func(k string) bool {
		for _, got := range kinds {
			if got == k {
				return true
			}
		}
		return false
	}
	for _, k := range []string{"decide", "model", "counterexample", "verdict"} {
		if !has(k) {
			t.Errorf("trace missing %q event: %v", k, kinds)
		}
	}
}

// TestObsTraceCCViolation checks that pruned models name the violated
// constraint in the trace.
func TestObsTraceCCViolation(t *testing.T) {
	s := newBoundedScenario(t, "1") // master admits only (1)
	sink := &obs.CollectSink{}
	s.p.Options.Trace = obs.NewTracer(sink)
	s.p.Options.Parallelism = 1
	// {(2)} forces a candidate model outside the master bound → pruned.
	ok, err := s.p.Consistent(s.ground("2"))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("{(2)} with master {1} should be inconsistent")
	}
	var pruned, violation bool
	for _, k := range sink.Kinds() {
		switch k {
		case "model_pruned":
			pruned = true
		case "cc_violation":
			violation = true
		}
	}
	if !pruned || !violation {
		t.Errorf("kinds = %v, want model_pruned and cc_violation", sink.Kinds())
	}
}

// TestObsHistogramsRCDP checks that the decider span feeds the
// distribution layer: one RCDP call must land in the decider wall-time
// histogram and the per-call admitted/pruned histograms.
func TestObsHistogramsRCDP(t *testing.T) {
	s := newBoundedScenario(t, "1", "2")
	m := obs.NewMetrics()
	s.p.Options.Obs = m
	if _, err := s.p.RCDP(s.ground("1"), Strong); err != nil {
		t.Fatal(err)
	}
	if got := m.HistoCount(obs.DeciderWallNs); got == 0 {
		t.Error("decider wall-time histogram empty")
	}
	if got := m.HistoCount(obs.ModelsAdmittedPerCall); got == 0 {
		t.Error("models-admitted-per-call histogram empty")
	}
	if m.HistoCount(obs.ModelsAdmittedPerCall) != m.HistoCount(obs.ModelsPrunedPerCall) {
		t.Error("admitted and pruned per-call histograms should record together")
	}
}

// TestObsFlightRecorderAndSlowOp runs a decider with the always-on
// flight recorder and a threshold of 1ns: the call must trip the
// slow-op log, and the dump must carry the ring's retained events.
func TestObsFlightRecorderAndSlowOp(t *testing.T) {
	s := newBoundedScenario(t, "1", "2")
	m := obs.NewMetrics()
	ring := obs.NewRingSink(32)
	var slow strings.Builder
	s.p.Options.Obs = m
	s.p.Options.Trace = obs.NewFlightTracer(ring)
	s.p.Options.FlightRecorder = ring
	s.p.Options.SlowOpThreshold = time.Nanosecond
	s.p.Options.SlowOpSink = &slow
	s.p.Options.Parallelism = 1

	if _, err := s.p.RCDP(s.ground("1"), Strong); err != nil {
		t.Fatal(err)
	}
	if ring.Len() == 0 {
		t.Fatal("flight recorder retained no events")
	}
	dump := slow.String()
	if !strings.Contains(dump, "=== SLOW OP op=rcdp_strong") ||
		!strings.Contains(dump, "=== END SLOW OP op=rcdp_strong ===") {
		t.Fatalf("slow-op markers missing:\n%s", dump)
	}
	if !strings.Contains(dump, "flight recorder:") || !strings.Contains(dump, "decide") {
		t.Fatalf("slow-op dump missing ring events:\n%s", dump)
	}
	if !strings.Contains(dump, "decider_wall_seconds") {
		t.Fatalf("slow-op dump missing histogram snapshot:\n%s", dump)
	}
}

// TestObsFlightTracerSkipsDiagnosis: the non-verbose flight tracer
// must record prune events but skip the per-constraint cc_violation
// re-derivation that only verbose tracers pay for.
func TestObsFlightTracerSkipsDiagnosis(t *testing.T) {
	s := newBoundedScenario(t, "1")
	sink := &obs.CollectSink{}
	s.p.Options.Trace = obs.NewFlightTracer(sink)
	s.p.Options.Parallelism = 1
	ok, err := s.p.Consistent(s.ground("2"))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("{(2)} with master {1} should be inconsistent")
	}
	var pruned, violation bool
	for _, k := range sink.Kinds() {
		switch k {
		case "model_pruned":
			pruned = true
		case "cc_violation":
			violation = true
		}
	}
	if !pruned {
		t.Errorf("flight tracer missed model_pruned: %v", sink.Kinds())
	}
	if violation {
		t.Errorf("flight tracer paid for cc_violation diagnosis: %v", sink.Kinds())
	}
}

// TestBudgetErrorDetail checks the BudgetError chain: errors.Is keeps
// matching the sentinel, errors.As surfaces the cap detail.
func TestBudgetErrorDetail(t *testing.T) {
	s := newBoundedScenario(t, "1", "2")
	s.p.Options.MaxValuations = 1
	m := obs.NewMetrics()
	s.p.Options.Obs = m
	_, err := s.p.RCDP(s.withVar("x", "y"), Strong)
	if err == nil {
		t.Fatal("expected a budget error under MaxValuations=1")
	}
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("errors.Is(err, ErrBudget) = false for %v", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("errors.As BudgetError = false for %v", err)
	}
	if be.Cap != "MaxValuations" || be.Limit != 1 || be.Op == "" {
		t.Fatalf("BudgetError = %+v", be)
	}
	if m.Snapshot().Counters["budget_errors"] == 0 {
		t.Error("budget_errors counter not incremented")
	}
}
