package core

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"

	"relcomplete/internal/adom"
	"relcomplete/internal/ctable"
	"relcomplete/internal/obs"
	"relcomplete/internal/query"
	"relcomplete/internal/relation"
	"relcomplete/internal/search"
)

// This file implements the strong completeness model (Section 4):
// RCDPs via the characterisation of Lemmas 4.2/4.3 (Theorem 4.1,
// Πp2-complete for CQ/UCQ/∃FO+), and MINPs via Lemma 4.7 and the
// Theorem 4.8 algorithm (Πp3-complete for c-instances, Dp2-complete for
// ground instances). FO and FP are undecidable in this model.

// Counterexample witnesses a failure of relative completeness: a model
// I of the c-instance and a partially closed extension I' on which the
// query answer grows.
type Counterexample struct {
	Model     *relation.Database
	Extension *relation.Database
	Gained    []relation.Tuple // answers in Q(I') \ Q(I)
}

// String renders the counterexample.
func (c *Counterexample) String() string {
	if c == nil {
		return "<complete>"
	}
	return fmt.Sprintf("model %v extended to %v gains answers %v", c.Model, c.Extension, c.Gained)
}

// RCDP decides the relatively complete database problem for the given
// model: is the c-instance T in RCQ(Q, Dm, V)?
func (p *Problem) RCDP(ci *ctable.CInstance, m Model) (bool, error) {
	return p.RCDPCtx(context.Background(), ci, m)
}

// RCDPCtx is RCDP honoring the context's deadline and cancellation; an
// abort surfaces as a *DeadlineError.
func (p *Problem) RCDPCtx(ctx context.Context, ci *ctable.CInstance, m Model) (bool, error) {
	ok, _, err := p.RCDPExplainCtx(ctx, ci, m)
	return ok, err
}

// RCDPExplain is RCDP returning a counterexample on failure (where the
// model's procedure produces one).
func (p *Problem) RCDPExplain(ci *ctable.CInstance, m Model) (bool, *Counterexample, error) {
	return p.RCDPExplainCtx(context.Background(), ci, m)
}

// RCDPExplainCtx is RCDPExplain honoring the context's deadline.
func (p *Problem) RCDPExplainCtx(ctx context.Context, ci *ctable.CInstance, m Model) (ok bool, cex *Counterexample, err error) {
	if tr := p.Options.Trace; tr.Enabled() {
		pop := tr.Push("decide", obs.F("problem", "rcdp"), obs.F("model", m.String()), obs.F("query", p.Query.Name()))
		defer func() {
			if err == nil {
				tr.Emit("verdict", obs.F("complete", ok))
			} else {
				tr.Emit("verdict", obs.F("error", err.Error()))
			}
			pop()
		}()
	}
	switch m {
	case Strong:
		return p.rcdpStrong(ctx, ci)
	case Weak:
		ok, err := p.rcdpWeak(ctx, ci)
		return ok, nil, err
	default:
		return p.rcdpViable(ctx, ci)
	}
}

// rcdpStrong implements Theorem 4.1: undecidable for FO and FP;
// for CQ/UCQ/∃FO+ it checks, per Lemmas 4.2/4.3, that every
// I ∈ ModAdom(T) is bounded by (Dm, V). The per-model bounded checks
// are independent and fan out over Options.Parallelism workers; the
// first-hit engine returns the counterexample of the lowest-index
// failing model, which is exactly the one the sequential scan reports.
func (p *Problem) rcdpStrong(ctx context.Context, ci *ctable.CInstance) (bool, *Counterexample, error) {
	ctx, endSpan := p.span(ctx, "rcdp_strong")
	defer endSpan()
	g := p.beginOp(ctx, "rcdp_strong", "no counterexample found in %d models")
	switch p.Query.Lang() {
	case FO, FP:
		return false, nil, fmt.Errorf("RCDP(%s), strong model: %w", p.Query.Lang(), ErrUndecidable)
	}
	d, err := p.domainsFor(ci, true, false)
	if err != nil {
		return false, nil, err
	}
	var consistent atomic.Bool
	var genErr error
	probe := func(ctx context.Context, idx int, db *relation.Database) (*Counterexample, bool, error) {
		ok, err := p.checkModel(ctx, db)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			return nil, false, nil
		}
		consistent.Store(true)
		c, err := p.boundedCounterexample(ctx, db, d)
		if err != nil {
			return nil, false, err
		}
		return c, c != nil, nil
	}
	hit, found, err := search.FirstHit(ctx, p.Options.workers(), p.Options.Obs,
		p.modelCandidates(ctx, ci, d, &genErr), probe)
	if err != nil {
		return false, nil, g.wrap(err)
	}
	if !found && genErr != nil {
		return false, nil, g.wrap(genErr)
	}
	if !consistent.Load() {
		return false, nil, ErrInconsistent
	}
	if found {
		return false, hit.Value, nil
	}
	return true, nil, nil
}

// boundedCounterexample checks whether the ground instance I is
// bounded by (Dm, V): for every disjunct tableau Ti of Q and every
// valuation ν of Ti over Adom, if I ∪ ν(Ti) is partially closed then
// Q(I) = Q(I ∪ ν(Ti)). It returns a counterexample when not.
//
// Rather than enumerating Adom^|vars| valuations blindly, it
// backtracks over the tableau's atoms, drawing each atom's tuple from
// a pre-filtered candidate set: a new tuple t can participate in a
// partially closed extension only when ({t}, Dm) ⊨ V (CC satisfaction
// is antimonotone in the data), which prunes the lattice down to the
// master-bounded fragment. Variables occurring only in comparisons or
// the head do not influence the extension and are skipped. Full
// closure of the assembled extension is still checked, so multi-tuple
// CC violations are caught exactly.
func (p *Problem) boundedCounterexample(ctx context.Context, db *relation.Database, d *domains) (*Counterexample, error) {
	baseAnswers, err := p.answers(ctx, db)
	if err != nil {
		return nil, err
	}
	tabs, err := p.disjunctTableaux()
	if err != nil {
		return nil, err
	}
	seenExt := map[string]bool{}
	sig := p.typingSignature(d.a, d.ty)
	for _, tab := range tabs {
		cex, err := p.tableauCounterexample(ctx, db, tab, d, sig, baseAnswers, seenExt)
		if err != nil {
			return nil, err
		}
		if cex != nil {
			return cex, nil
		}
	}
	return nil, nil
}

// atomCandidates returns the constant-pinned closed lattice for one
// atom, memoised per typing signature. Concurrent probes share the
// cache: the first caller computes under cacheMu, later callers reuse
// the cached slice (read-only by convention).
func (p *Problem) atomCandidates(ctx context.Context, sig string, atom *query.Atom, d *domains) ([]relation.Tuple, error) {
	p.cacheMu.Lock()
	defer p.cacheMu.Unlock()
	if p.atomCandCache == nil {
		p.atomCandCache = map[string][]relation.Tuple{}
	}
	key := sig + "§" + atom.String()
	if cached, ok := p.atomCandCache[key]; ok {
		return cached, nil
	}
	cands, err := p.atomClosedCandidates(ctx, atom, d)
	if err != nil {
		return nil, err
	}
	p.atomCandCache[key] = cands
	return cands, nil
}

// atomClosedCandidates enumerates the lattice tuples matching an
// atom's constant positions whose singleton instance is partially
// closed — the only tuples the atom can contribute to a partially
// closed extension (CC antimonotonicity). Closure verdicts are
// memoised per tuple across atoms. Callers must hold cacheMu (it
// reads and writes closureCache); the CC evaluation below never
// touches a Problem cache, so the lock cannot recurse.
func (p *Problem) atomClosedCandidates(ctx context.Context, atom *query.Atom, d *domains) ([]relation.Tuple, error) {
	r := p.Schema.Relation(atom.Rel)
	pins := map[int]relation.Value{}
	for i, t := range atom.Terms {
		if !t.IsVar {
			pins[i] = t.Const
		}
	}
	if p.closureCache == nil {
		p.closureCache = map[string]bool{}
	}
	probe := relation.NewDatabaseWith(p.Schema, p.Master.Interner())
	var out []relation.Tuple
	done, err := p.pinnedLatticeOver(ctx, r, d, pins, func(t relation.Tuple) (bool, error) {
		ck := atom.Rel + "|" + t.Key()
		closed, ok := p.closureCache[ck]
		if !ok {
			var err error
			closed, err = p.satisfiesCCs(ctx, probe.WithTuple(r.Name, t))
			if err != nil {
				return false, err
			}
			p.closureCache[ck] = closed
		}
		if closed {
			out = append(out, t)
		}
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	if !done {
		return nil, p.budgetErr("atom candidate lattice for "+atom.String(), "MaxValuations",
			int64(p.Options.MaxValuations), int64(p.Options.MaxValuations))
	}
	return out, nil
}

// pinnedLatticeOver enumerates the candidate lattice of one relation
// with some positions pinned to constants, consulting the context per
// leaf.
func (p *Problem) pinnedLatticeOver(ctx context.Context, r *relation.Schema, d *domains, pins map[int]relation.Value,
	fn func(t relation.Tuple) (bool, error)) (bool, error) {
	cols := make([][]relation.Value, r.Arity())
	for i := range cols {
		if v, ok := pins[i]; ok {
			if !r.DomainAt(i).Contains(v) {
				return true, nil // constant outside the domain: no tuples
			}
			cols[i] = []relation.Value{v}
			continue
		}
		if d.ty != nil {
			cols[i] = d.ty.candidatesAt(position{rel: r.Name, col: i}, r.DomainAt(i), d.a)
		} else {
			cols[i] = d.a.CandidatesFor(r.DomainAt(i))
		}
	}
	t := make(relation.Tuple, r.Arity())
	tried := 0
	var rec func(i int) (bool, error)
	rec = func(i int) (bool, error) {
		if i == r.Arity() {
			if err := ctx.Err(); err != nil {
				return false, err
			}
			tried++
			if p.Options.MaxValuations > 0 && tried > p.Options.MaxValuations {
				return false, p.budgetErr("pinned tuple lattice over "+r.Name, "MaxValuations",
					int64(p.Options.MaxValuations), int64(tried))
			}
			return fn(t.Clone())
		}
		for _, v := range cols[i] {
			t[i] = v
			cont, err := rec(i + 1)
			if err != nil || !cont {
				return cont, err
			}
		}
		return true, nil
	}
	return rec(0)
}

// adomSignature canonically serialises an active domain's values.
func adomSignature(a *adom.Adom) string {
	var sb strings.Builder
	for _, v := range a.Values() {
		fmt.Fprintf(&sb, "%d:%s;", len(v), v)
	}
	return sb.String()
}

// tableauCounterexample backtracks over one disjunct tableau's atoms.
func (p *Problem) tableauCounterexample(ctx context.Context, db *relation.Database, tab *query.Tableau,
	d *domains, sig string, baseAnswers []relation.Tuple,
	seenExt map[string]bool) (*Counterexample, error) {

	type pick struct {
		rel string
		t   relation.Tuple
	}
	binding := ctable.Valuation{}
	picks := make([]pick, 0, len(tab.Atoms))
	var cex *Counterexample
	tried := 0

	// Pre-filter each atom's candidate tuples by its constant
	// positions: instance tuples (computed per call, they are few) and
	// lattice candidates (cached across calls — the RCQP search checks
	// thousands of candidate instances against one lattice). Variable
	// positions are checked during unification; lattice tuples already
	// present in the instance are skipped during iteration.
	matches := func(atom *query.Atom, t relation.Tuple) bool {
		if len(t) != len(atom.Terms) {
			return false
		}
		for j, term := range atom.Terms {
			if !term.IsVar && term.Const != t[j] {
				return false
			}
		}
		return true
	}
	instCands := make([][]relation.Tuple, len(tab.Atoms))
	latticeCands := make([][]relation.Tuple, len(tab.Atoms))
	for i, atom := range tab.Atoms {
		if p.Schema.Relation(atom.Rel) == nil {
			return nil, fmt.Errorf("relcomplete: query atom over unknown relation %s", atom.Rel)
		}
		for _, t := range db.Relation(atom.Rel).Tuples() {
			if matches(atom, t) {
				instCands[i] = append(instCands[i], t)
			}
		}
		cached, err := p.atomCandidates(ctx, sig, atom, d)
		if err != nil {
			return nil, err
		}
		latticeCands[i] = cached
	}

	var process func() error
	process = func() error {
		if err := ctx.Err(); err != nil {
			return err
		}
		ext := db
		grew := false
		for _, pk := range picks {
			if !ext.Relation(pk.rel).Contains(pk.t) {
				if !grew {
					ext = ext.Clone()
					grew = true
				}
				ext.MustInsert(pk.rel, pk.t)
			}
		}
		if !grew {
			return nil // I' = I: answers trivially agree
		}
		key := dbKey(ext)
		if seenExt[key] {
			return nil
		}
		seenExt[key] = true
		tried++
		if p.Options.MaxValuations > 0 && tried > p.Options.MaxValuations {
			return p.budgetErr("bounded check", "MaxValuations",
				int64(p.Options.MaxValuations), int64(tried))
		}
		p.Options.Obs.Inc(obs.ExtensionsTested)
		ok, err := p.satisfiesCCs(ctx, ext)
		if err != nil {
			return err
		}
		if !ok {
			if tr := p.Options.Trace; tr.Enabled() {
				tr.Emit("extension_pruned", obs.F("extension", ext.String()))
				p.traceCCViolation(ctx, ext)
			}
			return nil // not a partially closed extension
		}
		extAnswers, err := p.answers(ctx, ext)
		if err != nil {
			return err
		}
		gained := diffTuples(baseAnswers, extAnswers)
		if len(gained) > 0 {
			cex = &Counterexample{Model: db, Extension: ext, Gained: gained}
			p.Options.Obs.Inc(obs.CounterexamplesFound)
			if tr := p.Options.Trace; tr.Enabled() {
				tr.Emit("counterexample",
					obs.F("model", db.String()),
					obs.F("extension", ext.String()),
					obs.F("gained", fmt.Sprint(gained)))
			}
		} else if tr := p.Options.Trace; tr.Enabled() {
			tr.Emit("extension_agrees", obs.F("extension", ext.String()))
		}
		return nil
	}

	var rec func(i int) error
	rec = func(i int) error {
		if cex != nil {
			return nil
		}
		if i == len(tab.Atoms) {
			return process()
		}
		atom := tab.Atoms[i]
		tryTuple := func(t relation.Tuple) error {
			assigned := make([]string, 0, len(atom.Terms))
			ok := true
			for j, term := range atom.Terms {
				if !term.IsVar {
					continue // constants pre-checked by the candidate filters
				}
				if v, bound := binding[term.Name]; bound {
					if v != t[j] {
						ok = false
						break
					}
					continue
				}
				binding[term.Name] = t[j]
				assigned = append(assigned, term.Name)
			}
			if ok {
				picks = append(picks, pick{rel: atom.Rel, t: t})
				if err := rec(i + 1); err != nil {
					return err
				}
				picks = picks[:len(picks)-1]
			}
			for _, v := range assigned {
				delete(binding, v)
			}
			return nil
		}
		for _, t := range instCands[i] {
			if err := tryTuple(t); err != nil {
				return err
			}
			if cex != nil {
				return nil
			}
		}
		for _, t := range latticeCands[i] {
			if db.Relation(atom.Rel).Contains(t) {
				continue // already tried via the instance part
			}
			if err := tryTuple(t); err != nil {
				return err
			}
			if cex != nil {
				return nil
			}
		}
		return nil
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	return cex, nil
}

// GroundComplete decides whether a ground instance I is complete for Q
// relative to (Dm, V) — the Section 2.1 notion. It requires I to be
// partially closed and is available for CQ, UCQ and ∃FO+ (Πp2 by
// Theorem 4.1 restricted to ground instances).
func (p *Problem) GroundComplete(db *relation.Database) (bool, *Counterexample, error) {
	return p.GroundCompleteCtx(context.Background(), db)
}

// GroundCompleteCtx is GroundComplete honoring the context's deadline.
func (p *Problem) GroundCompleteCtx(ctx context.Context, db *relation.Database) (bool, *Counterexample, error) {
	ctx, endSpan := p.span(ctx, "ground_complete")
	defer endSpan()
	g := p.beginOp(ctx, "ground_complete", "no counterexample found in %d models")
	switch p.Query.Lang() {
	case FO, FP:
		return false, nil, fmt.Errorf("ground completeness for %s: %w", p.Query.Lang(), ErrUndecidable)
	}
	closed, err := p.satisfiesCCs(ctx, db)
	if err != nil {
		return false, nil, err
	}
	if !closed {
		return false, nil, nil
	}
	d, err := p.domainsFor(ctable.FromDatabase(db), true, false)
	if err != nil {
		return false, nil, err
	}
	cex, err := p.boundedCounterexample(ctx, db, d)
	if err != nil {
		return false, nil, g.wrap(err)
	}
	return cex == nil, cex, nil
}

// MINP decides the minimality problem for the given model: is T a
// minimal c-instance complete for Q relative to (Dm, V)?
func (p *Problem) MINP(ci *ctable.CInstance, m Model) (bool, error) {
	return p.MINPCtx(context.Background(), ci, m)
}

// MINPCtx is MINP honoring the context's deadline and cancellation; an
// abort surfaces as a *DeadlineError.
func (p *Problem) MINPCtx(ctx context.Context, ci *ctable.CInstance, m Model) (bool, error) {
	switch m {
	case Strong:
		return p.minpStrong(ctx, ci)
	case Weak:
		return p.minpWeak(ctx, ci)
	default:
		return p.minpViable(ctx, ci)
	}
}

// minpStrong implements Theorem 4.8 for c-instances: T is minimal
// strongly complete iff T ∈ RCQs and every I ∈ ModAdom(T) is a minimal
// complete ground instance — by Lemma 4.7(b) it suffices to check that
// no single-tuple removal of I stays complete.
func (p *Problem) minpStrong(ctx context.Context, ci *ctable.CInstance) (bool, error) {
	ctx, endSpan := p.span(ctx, "minp_strong")
	defer endSpan()
	g := p.beginOp(ctx, "minp_strong", "no non-minimal model found in %d models")
	switch p.Query.Lang() {
	case FO, FP:
		return false, fmt.Errorf("MINP(%s), strong model: %w", p.Query.Lang(), ErrUndecidable)
	}
	complete, _, err := p.rcdpStrong(ctx, ci)
	if err != nil {
		return false, err
	}
	if !complete {
		return false, nil
	}
	d, err := p.domainsFor(ci, true, false)
	if err != nil {
		return false, err
	}
	// First hit = some model with a complete single-tuple removal,
	// which refutes minimality; the models fan out over the workers.
	var genErr error
	probe := func(ctx context.Context, idx int, db *relation.Database) (struct{}, bool, error) {
		ok, err := p.checkModel(ctx, db)
		if err != nil || !ok {
			return struct{}{}, false, err
		}
		nonMin, err := p.hasCompleteRemoval(ctx, db, d)
		return struct{}{}, nonMin, err
	}
	_, found, err := search.FirstHit(ctx, p.Options.workers(), p.Options.Obs,
		p.modelCandidates(ctx, ci, d, &genErr), probe)
	if err != nil {
		return false, g.wrap(err)
	}
	if !found && genErr != nil {
		return false, g.wrap(genErr)
	}
	return !found, nil
}

// hasCompleteRemoval reports whether some I \ {t} is still complete
// (Lemma 4.7(b): I \ {t} remains partially closed automatically). The
// context is consulted per removal candidate.
func (p *Problem) hasCompleteRemoval(ctx context.Context, db *relation.Database, d *domains) (bool, error) {
	for _, loc := range db.AllTuples() {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		smaller := db.WithoutTuple(loc.Rel, loc.Tuple)
		cex, err := p.boundedCounterexample(ctx, smaller, d)
		if err != nil {
			return false, err
		}
		if cex == nil {
			return true, nil
		}
	}
	return false, nil
}

// GroundMinimal decides whether a ground instance is a minimal complete
// instance (the Dp2 case of Theorem 4.8).
func (p *Problem) GroundMinimal(db *relation.Database) (bool, error) {
	return p.GroundMinimalCtx(context.Background(), db)
}

// GroundMinimalCtx is GroundMinimal honoring the context's deadline.
func (p *Problem) GroundMinimalCtx(ctx context.Context, db *relation.Database) (bool, error) {
	g := p.beginOp(ctx, "ground_minimal", "no complete removal found in %d models")
	complete, _, err := p.GroundCompleteCtx(ctx, db)
	if err != nil {
		return false, err
	}
	if !complete {
		return false, nil
	}
	d, err := p.domainsFor(ctable.FromDatabase(db), true, false)
	if err != nil {
		return false, err
	}
	nonMin, err := p.hasCompleteRemoval(ctx, db, d)
	return !nonMin, g.wrap(err)
}
