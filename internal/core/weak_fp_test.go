package core

import (
	"errors"
	"testing"

	"relcomplete/internal/cc"
	"relcomplete/internal/ctable"
	"relcomplete/internal/query"
	"relcomplete/internal/relation"
)

// FP scenario: edge(A,B) bounded by master medge; Q = transitive
// closure. Weak-model decisions are decidable for FP (Theorem 5.1).
type fpScenario struct {
	p      *Problem
	schema *relation.DBSchema
}

func newFPScenario(t testing.TB, masterEdges ...[2]relation.Value) *fpScenario {
	t.Helper()
	schema := relation.MustDBSchema(relation.MustSchema("edge", relation.Attr("A", nil), relation.Attr("B", nil)))
	masterSchema := relation.MustDBSchema(relation.MustSchema("medge", relation.Attr("A", nil), relation.Attr("B", nil)))
	dm := relation.NewDatabase(masterSchema)
	for _, e := range masterEdges {
		dm.MustInsert("medge", relation.T(e[0], e[1]))
	}
	v := cc.NewSet(cc.MustParse("em", "q(x, y) := edge(x, y)", "p(x, y) := medge(x, y)"))
	prog := query.MustParseProgram("reach", schema, `
		reach(x, y) :- edge(x, y).
		reach(x, z) :- reach(x, y), edge(y, z).
		output reach.
	`)
	return &fpScenario{p: MustProblem(schema, FPQuery(prog), dm, v, Options{}), schema: schema}
}

func (s *fpScenario) ground(edges ...[2]relation.Value) *ctable.CInstance {
	ci := ctable.NewCInstance(s.schema)
	for _, e := range edges {
		ci.MustAddRow("edge", ctable.Row{Terms: []query.Term{query.C(e[0]), query.C(e[1])}})
	}
	return ci
}

func TestRCDPWeakFP(t *testing.T) {
	s := newFPScenario(t, [2]relation.Value{"a", "b"}, [2]relation.Value{"b", "c"})

	// Saturated: no extensions, weakly complete.
	full := s.ground([2]relation.Value{"a", "b"}, [2]relation.Value{"b", "c"})
	ok, err := s.p.RCDP(full, Weak)
	if err != nil || !ok {
		t.Fatalf("saturated FP instance should be weakly complete: %v %v", ok, err)
	}

	// Missing (b,c): the unique extension adds reach facts (b,c), (a,c)
	// that are certain but absent.
	part := s.ground([2]relation.Value{"a", "b"})
	ok, err = s.p.RCDP(part, Weak)
	if err != nil || ok {
		t.Fatal("partial FP instance should not be weakly complete")
	}

	// Strong/viable models are undecidable for FP.
	if _, err := s.p.RCDP(full, Strong); !errors.Is(err, ErrUndecidable) {
		t.Fatalf("RCDP(FP) strong: want ErrUndecidable, got %v", err)
	}
	if _, err := s.p.RCDP(full, Viable); !errors.Is(err, ErrUndecidable) {
		t.Fatalf("RCDP(FP) viable: want ErrUndecidable, got %v", err)
	}
}

func TestRCDPWeakFPWithVariables(t *testing.T) {
	s := newFPScenario(t, [2]relation.Value{"a", "b"}, [2]relation.Value{"b", "c"})
	// edge(a, x): models {(a,b)} only ((a,c), fresh values violate V...
	// actually (a,b) is the only master edge from a).
	ci := ctable.NewCInstance(s.schema)
	ci.MustAddRow("edge", ctable.Row{Terms: []query.Term{query.C("a"), query.V("x")}})
	ok, err := s.p.RCDP(ci, Weak)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("model {(a,b)} extends by (b,c) gaining certain reach facts")
	}
}

func TestMINPWeakFP(t *testing.T) {
	s := newFPScenario(t, [2]relation.Value{"a", "b"})
	// ∅: unique extension {(a,b)} yields certain reach (a,b) — not
	// weakly complete; {(a,b)} is weakly complete (unextendable) and
	// minimal (the only smaller instance ∅ is not weakly complete).
	ok, err := s.p.MINP(s.ground([2]relation.Value{"a", "b"}), Weak)
	if err != nil || !ok {
		t.Fatalf("{(a,b)} should be minimal weakly complete for FP: %v %v", ok, err)
	}

	s2 := newFPScenario(t, [2]relation.Value{"a", "b"}, [2]relation.Value{"c", "d"})
	// ∅ is weakly complete here (extensions disagree), so any larger
	// instance is non-minimal.
	ok, err = s2.p.MINP(s2.ground(), Weak)
	if err != nil || !ok {
		t.Fatalf("∅ should be minimal weakly complete: %v %v", ok, err)
	}
	ok, err = s2.p.MINP(s2.ground([2]relation.Value{"a", "b"}), Weak)
	if err != nil || ok {
		t.Fatal("non-empty instance is non-minimal when ∅ is weakly complete")
	}
}

func TestRCQPWeakFPTrivial(t *testing.T) {
	s := newFPScenario(t, [2]relation.Value{"a", "b"})
	ok, err := s.p.RCQP(Weak)
	if err != nil || !ok {
		t.Fatal("RCQP weak is trivially true for FP (Theorem 5.4)")
	}
	ok, err = s.p.RCQPGround(Weak)
	if err != nil || !ok {
		t.Fatal("RCQP weak ground is trivially true for FP")
	}
}

func TestConstructWeaklyComplete(t *testing.T) {
	s := newFPScenario(t, [2]relation.Value{"a", "b"}, [2]relation.Value{"b", "c"})
	witness, err := s.p.ConstructWeaklyComplete()
	if err != nil {
		t.Fatal(err)
	}
	// The witness must be partially closed and weakly complete.
	closed, err := s.p.PartiallyClosed(witness)
	if err != nil || !closed {
		t.Fatal("witness must be partially closed")
	}
	ok, err := s.p.RCDP(ctable.FromDatabase(witness), Weak)
	if err != nil || !ok {
		t.Fatalf("witness must be weakly complete: %v %v", ok, err)
	}
	// Maximality: with edge ⊆ medge, the witness is exactly the master
	// edges.
	if witness.Relation("edge").Len() != 2 {
		t.Fatalf("witness should saturate the master bound: %v", witness)
	}

	// For an FO query the construction is refused.
	schema := s.schema
	foP := MustProblem(schema, CalcQuery(query.MustParseQuery("Q() := ! (exists x, y: edge(x, y))")), nil, nil, Options{})
	if _, err := foP.ConstructWeaklyComplete(); !errors.Is(err, ErrUndecidable) {
		t.Fatalf("want ErrUndecidable, got %v", err)
	}
}

func TestConstructWeaklyCompleteUnconstrained(t *testing.T) {
	// With no CCs the greedy witness saturates the whole Adom lattice;
	// it is weakly complete because every certain extension answer is
	// already present... (Theorem 5.4's I0).
	schema := relation.MustDBSchema(relation.MustSchema("R", relation.Attr("A", relation.Bool())))
	p := MustProblem(schema, CalcQuery(query.MustParseQuery("Q(x) := R(x)")), nil, nil, Options{})
	witness, err := p.ConstructWeaklyComplete()
	if err != nil {
		t.Fatal(err)
	}
	if witness.Relation("R").Len() != 2 {
		t.Fatalf("Boolean lattice should saturate to {0,1}: %v", witness)
	}
	ok, err := p.RCDP(ctable.FromDatabase(witness), Weak)
	if err != nil || !ok {
		t.Fatalf("saturated witness must be weakly complete: %v %v", ok, err)
	}
}
