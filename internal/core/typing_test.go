package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"relcomplete/internal/cc"
	"relcomplete/internal/ctable"
	"relcomplete/internal/query"
	"relcomplete/internal/relation"
)

// Differential validation of the typed-domain pruning: on randomised
// problems over INFINITE attribute domains (where the pruning actually
// bites — Boolean-domain inputs bypass it), every decider must agree
// between the default typed path and Options.NoTypedDomains.

type typedCase struct {
	typed, untyped *Problem
	ci             *ctable.CInstance
}

func randomInfiniteDomainCases(t testing.TB, seed int64, n int) []typedCase {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	schema := relation.MustDBSchema(
		relation.MustSchema("R", relation.Attr("A", nil), relation.Attr("B", nil)),
	)
	masterSchema := relation.MustDBSchema(
		relation.MustSchema("M", relation.Attr("A", nil), relation.Attr("B", nil)),
	)
	queries := []string{
		"Q(x) := R(x, y)",
		"Q(x, y) := R(x, y)",
		"Q(x) := R(x, y) & y = 'k1'",
		"Q(x) := R(x, x)",
		"Q() := exists x, y: R(x, y) & x != y",
	}
	// Distinct value pools per column exercise the class separation.
	aVals := []relation.Value{"a1", "a2"}
	bVals := []relation.Value{"k1", "k2"}
	var out []typedCase
	for len(out) < n {
		dm := relation.NewDatabase(masterSchema)
		for _, a := range aVals {
			for _, b := range bVals {
				if r.Intn(2) == 0 {
					dm.MustInsert("M", relation.T(a, b))
				}
			}
		}
		v := cc.NewSet(cc.MustParse("rm", "q(x, y) := R(x, y)", "p(x, y) := M(x, y)"))
		qsrc := queries[r.Intn(len(queries))]
		mk := func(opts Options) *Problem {
			return MustProblem(schema, CalcQuery(query.MustParseQuery(qsrc)), dm, v, opts)
		}
		ci := ctable.NewCInstance(schema)
		for i := 0; i < r.Intn(3); i++ {
			terms := make([]query.Term, 2)
			if r.Intn(3) == 0 {
				terms[0] = query.V(fmt.Sprintf("u%d", r.Intn(2)))
			} else {
				terms[0] = query.C(aVals[r.Intn(2)])
			}
			if r.Intn(3) == 0 {
				terms[1] = query.V(fmt.Sprintf("w%d", r.Intn(2)))
			} else {
				terms[1] = query.C(bVals[r.Intn(2)])
			}
			ci.MustAddRow("R", ctable.Row{Terms: terms})
		}
		out = append(out, typedCase{
			typed:   mk(Options{}),
			untyped: mk(Options{NoTypedDomains: true}),
			ci:      ci,
		})
	}
	return out
}

func TestTypedDomainsAgreeWithUntyped(t *testing.T) {
	for i, c := range randomInfiniteDomainCases(t, 41, 50) {
		for _, m := range []Model{Strong, Weak, Viable} {
			got, err1 := c.typed.RCDP(c.ci, m)
			want, err2 := c.untyped.RCDP(c.ci, m)
			if errors.Is(err1, ErrInconsistent) || errors.Is(err2, ErrInconsistent) {
				if !errors.Is(err1, ErrInconsistent) || !errors.Is(err2, ErrInconsistent) {
					t.Fatalf("case %d model %v: consistency disagreement %v vs %v", i, m, err1, err2)
				}
				continue
			}
			if err1 != nil || err2 != nil {
				t.Fatalf("case %d model %v: %v / %v", i, m, err1, err2)
			}
			if got != want {
				t.Fatalf("case %d model %v: typed %v vs untyped %v\nquery: %s\nci: %v\nmaster: %v",
					i, m, got, want, c.typed.Query, c.ci, c.typed.Master)
			}
		}
	}
}

func TestTypedDomainsMINPAgree(t *testing.T) {
	for i, c := range randomInfiniteDomainCases(t, 42, 30) {
		for _, m := range []Model{Strong, Viable} {
			got, err1 := c.typed.MINP(c.ci, m)
			want, err2 := c.untyped.MINP(c.ci, m)
			if errors.Is(err1, ErrInconsistent) || errors.Is(err2, ErrInconsistent) {
				continue
			}
			if err1 != nil || err2 != nil {
				t.Fatalf("case %d model %v: %v / %v", i, m, err1, err2)
			}
			if got != want {
				t.Fatalf("case %d model %v: typed %v vs untyped %v", i, m, got, want)
			}
		}
	}
}

func TestTypedDomainsConsistencyExtensibilityAgree(t *testing.T) {
	for i, c := range randomInfiniteDomainCases(t, 43, 40) {
		g1, e1 := c.typed.Consistent(c.ci)
		g2, e2 := c.untyped.Consistent(c.ci)
		if e1 != nil || e2 != nil {
			t.Fatal(e1, e2)
		}
		if g1 != g2 {
			t.Fatalf("case %d: consistency typed %v vs untyped %v", i, g1, g2)
		}
		if !g1 {
			continue
		}
		db, err := c.typed.AnyModel(c.ci)
		if err != nil || db == nil {
			t.Fatal(db, err)
		}
		x1, e1 := c.typed.Extensible(db)
		x2, e2 := c.untyped.Extensible(db)
		if e1 != nil || e2 != nil {
			t.Fatal(e1, e2)
		}
		if x1 != x2 {
			t.Fatalf("case %d: extensibility typed %v vs untyped %v on %v", i, x1, x2, db)
		}
	}
}

func TestTypedDomainsCertainAnswersAgree(t *testing.T) {
	for i, c := range randomInfiniteDomainCases(t, 44, 40) {
		a1, e1 := c.typed.CertainAnswers(c.ci)
		a2, e2 := c.untyped.CertainAnswers(c.ci)
		if errors.Is(e1, ErrInconsistent) || errors.Is(e2, ErrInconsistent) {
			if !errors.Is(e1, ErrInconsistent) || !errors.Is(e2, ErrInconsistent) {
				t.Fatalf("case %d: inconsistency disagreement", i)
			}
			continue
		}
		if e1 != nil || e2 != nil {
			t.Fatal(e1, e2)
		}
		if !equalTupleSets(a1, a2) {
			t.Fatalf("case %d: certain answers typed %v vs untyped %v", i, a1, a2)
		}
	}
}

// The payoff: the FULL eight-attribute Figure 1 becomes decidable. The
// scenario mirrors internal/paperex.Full (not imported: paperex depends
// on core). The strong-model check still exhausts an extension space of
// a few hundred thousand candidates (~2 min); skipped under -short.
func TestTypedDomainsFullFigure1(t *testing.T) {
	if testing.Short() {
		t.Skip("full-schema strong check takes ~2 minutes")
	}
	mvisit := relation.MustSchema("MVisit",
		relation.Attr("NHS", nil), relation.Attr("name", nil), relation.Attr("city", nil),
		relation.Attr("yob", nil), relation.Attr("GD", nil), relation.Attr("Date", nil),
		relation.Attr("Diag", nil), relation.Attr("DrID", nil))
	patientm := relation.MustSchema("Patientm",
		relation.Attr("NHS", nil), relation.Attr("name", nil), relation.Attr("yob", nil),
		relation.Attr("zip", nil), relation.Attr("GD", nil))
	mempty := relation.MustSchema("Mempty", relation.Attr("W", nil))
	data := relation.MustDBSchema(mvisit)
	master := relation.MustDBSchema(patientm, mempty)
	dm := relation.NewDatabase(master)
	dm.MustInsert("Patientm", relation.T("915-15-335", "John", "2000", "EH8 9AB", "M"))
	dm.MustInsert("Patientm", relation.T("915-15-336", "Bob", "2000", "EH8 9AB", "M"))

	v := cc.NewSet()
	v.Add(cc.Must("edi_2000",
		query.MustQuery("q", []query.Term{query.V("n"), query.V("na"), query.V("g")},
			query.Ex([]string{"c", "d", "di", "i"}, query.Conj(
				query.NewAtom("MVisit", query.V("n"), query.V("na"), query.V("c"), query.C("2000"),
					query.V("g"), query.V("d"), query.V("di"), query.V("i")),
				query.EqT(query.V("c"), query.C("EDI"))))),
		query.MustQuery("p", []query.Term{query.V("n"), query.V("na"), query.V("g")},
			query.Ex([]string{"z"}, query.NewAtom("Patientm",
				query.V("n"), query.V("na"), query.C("2000"), query.V("z"), query.V("g"))))))
	fdCCs, err := cc.FD{Rel: "MVisit", LHS: []string{"NHS"}, RHS: []string{"name", "GD"}}.AsCCs(data, mempty)
	if err != nil {
		t.Fatal(err)
	}
	v.Add(fdCCs...)

	ci := ctable.NewCInstance(data)
	c := func(s relation.Value) query.Term { return query.C(s) }
	ci.MustAddRow("MVisit", ctable.Row{Terms: []query.Term{
		c("915-15-335"), c("John"), c("EDI"), c("2000"), c("M"), c("15/03/2015"), c("Flu"), c("01")}})
	ci.MustAddRow("MVisit", ctable.Row{
		Terms: []query.Term{c("915-15-356"), query.V("x"), c("EDI"), query.V("z"), c("F"), c("15/03/2015"), c("Diabetes"), c("01")},
		Cond:  ctable.Cond(ctable.CNeq(query.V("z"), query.C("2001"))),
	})
	ci.MustAddRow("MVisit", ctable.Row{
		Terms: []query.Term{c("915-15-357"), c("Mary"), query.V("w"), c("2000"), c("F"), c("15/03/2015"), c("Influenza"), query.V("u")},
		Cond:  ctable.Cond(ctable.CNeq(query.V("w"), query.C("EDI"))),
	})

	q1 := query.MustParseQuery(
		"Q1(na) := exists c, g, d, di, i: MVisit('915-15-335', na, c, '2000', g, d, di, i) & c = 'EDI'")
	p := MustProblem(data, CalcQuery(q1), dm, v, Options{})

	// Example 2.3: strongly complete for Q1 — on the FULL schema.
	ok, err := p.RCDP(ci, Strong)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("full Figure 1 should be strongly complete for Q1")
	}

	// Q4 on the full schema: weakly but not strongly complete.
	q4 := query.MustParseQuery(
		"Q4(na) := exists n, g, di, i: MVisit(n, na, 'EDI', '2000', g, '15/03/2015', di, i)")
	p4 := MustProblem(data, CalcQuery(q4), dm, v, Options{})
	weak, err := p4.RCDP(ci, Weak)
	if err != nil {
		t.Fatal(err)
	}
	if !weak {
		t.Fatal("full Figure 1 should be weakly complete for Q4")
	}
	strong, err := p4.RCDP(ci, Strong)
	if err != nil {
		t.Fatal(err)
	}
	if strong {
		t.Fatal("full Figure 1 should NOT be strongly complete for Q4")
	}
}
