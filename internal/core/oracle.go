package core

import (
	"context"
	"fmt"
	"sync/atomic"

	"relcomplete/internal/ctable"
	"relcomplete/internal/relation"
	"relcomplete/internal/search"
)

// This file contains reference implementations that follow the paper's
// definitions literally — enumerating partially closed extensions tuple
// set by tuple set — rather than through the small-model
// characterisations the production deciders use (Lemmas 4.2/4.3/5.2).
// They are exponential in one more dimension than the deciders and
// exist as executable specifications: the test-suite cross-validates
// every decider against them on randomised small inputs.

// ReferenceGroundComplete checks Section 2.1 completeness by brute
// force: it enumerates every partially closed extension of db obtained
// by adding at most extra tuples over the active domain and compares
// query answers. With extra at least the atom count of the query's
// largest disjunct this is exact for CQ/UCQ/∃FO+ (Lemma 4.2); it is
// also usable for FP and FO queries on small inputs, where no
// production decider exists.
func (p *Problem) ReferenceGroundComplete(db *relation.Database, extra int) (bool, error) {
	return p.ReferenceGroundCompleteCtx(context.Background(), db, extra)
}

// ReferenceGroundCompleteCtx is ReferenceGroundComplete honoring the
// context's deadline.
func (p *Problem) ReferenceGroundCompleteCtx(ctx context.Context, db *relation.Database, extra int) (bool, error) {
	g := p.beginOp(ctx, "reference_ground_complete", "no counterexample found in %d models")
	closed, err := p.satisfiesCCs(ctx, db)
	if err != nil {
		return false, err
	}
	if !closed {
		return false, nil
	}
	a, err := p.adomFor(ctable.FromDatabase(db), p.Query.Calc != nil && p.Query.Lang() != FO, true)
	if err != nil {
		return false, err
	}
	var lattice []relation.Located
	for _, r := range p.Schema.Relations() {
		done, err := p.tuplesOver(ctx, r, a, func(t relation.Tuple) (bool, error) {
			if !db.Relation(r.Name).Contains(t) {
				lattice = append(lattice, relation.Located{Rel: r.Name, Tuple: t})
			}
			return true, nil
		})
		if err != nil {
			return false, g.wrap(err)
		}
		if !done {
			return false, p.budgetErr("reference lattice over "+r.Name, "MaxValuations",
				int64(p.Options.MaxValuations), int64(p.Options.MaxValuations))
		}
	}
	base, err := p.answers(ctx, db)
	if err != nil {
		return false, err
	}
	complete := true
	var rec func(start int, cur *relation.Database, added int) error
	rec = func(start int, cur *relation.Database, added int) error {
		if !complete {
			return nil
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		if added > 0 {
			closed, err := p.satisfiesCCs(ctx, cur)
			if err != nil {
				return err
			}
			if !closed {
				// Supersets stay violating (CC monotonicity): prune.
				return nil
			}
			ans, err := p.answers(ctx, cur)
			if err != nil {
				return err
			}
			if !equalTupleSets(base, ans) {
				complete = false
				return nil
			}
		}
		if added == extra {
			return nil
		}
		for i := start; i < len(lattice); i++ {
			if err := rec(i+1, cur.WithTuple(lattice[i].Rel, lattice[i].Tuple), added+1); err != nil {
				return err
			}
			if !complete {
				return nil
			}
		}
		return nil
	}
	if err := rec(0, db, 0); err != nil {
		return false, g.wrap(err)
	}
	return complete, nil
}

// ReferenceRCDP mirrors RCDP through ReferenceGroundComplete. Like the
// production deciders it fans the per-model brute-force checks out
// over Options.Parallelism workers: strong looks for the first
// incomplete model, viable for the first complete one.
func (p *Problem) ReferenceRCDP(ci *ctable.CInstance, m Model, extra int) (bool, error) {
	return p.ReferenceRCDPCtx(context.Background(), ci, m, extra)
}

// ReferenceRCDPCtx is ReferenceRCDP honoring the context's deadline.
func (p *Problem) ReferenceRCDPCtx(ctx context.Context, ci *ctable.CInstance, m Model, extra int) (bool, error) {
	g := p.beginOp(ctx, "reference_rcdp_"+m.String(), "verdict undecided after %d models")
	d, err := p.domainsFor(ci, p.Query.Calc != nil && p.Query.Lang() != FO, true)
	if err != nil {
		return false, err
	}
	if m == Weak {
		ok, err := p.referenceWeakComplete(ctx, ci, extra)
		return ok, g.wrap(err)
	}
	var any atomic.Bool
	var genErr error
	probe := func(ctx context.Context, idx int, db *relation.Database) (struct{}, bool, error) {
		ok, err := p.satisfiesCCs(ctx, db)
		if err != nil || !ok {
			return struct{}{}, false, err
		}
		any.Store(true)
		complete, err := p.ReferenceGroundCompleteCtx(ctx, db, extra)
		if err != nil {
			return struct{}{}, false, err
		}
		if m == Strong {
			return struct{}{}, !complete, nil // hit = refutation
		}
		return struct{}{}, complete, nil // hit = witness
	}
	_, found, err := search.FirstHit(ctx, p.Options.workers(), p.Options.Obs,
		p.modelCandidates(ctx, ci, d, &genErr), probe)
	if err != nil {
		return false, g.wrap(err)
	}
	if !found && genErr != nil {
		return false, g.wrap(genErr)
	}
	if !any.Load() {
		return false, ErrInconsistent
	}
	if m == Strong {
		return !found, nil
	}
	return found, nil
}

// referenceWeakComplete computes the weak-model definition directly:
// ∩_{I∈Mod} Q(I) versus ∩_{I∈Mod, I'∈Ext(I), |I'\I| ≤ extra} Q(I').
// The per-model extension sweeps — the expensive dimension — run on
// the worker pool; each produces the model's answers and its local
// extension-answer intersection, merged in enumeration order so the
// reference stays bit-deterministic.
func (p *Problem) referenceWeakComplete(ctx context.Context, ci *ctable.CInstance, extra int) (bool, error) {
	dom, err := p.domainsFor(ci, false, true)
	if err != nil {
		return false, err
	}
	adm := dom.a
	var certT []relation.Tuple
	universeT := true
	var certExt []relation.Tuple
	universeExt := true
	anyModel := false
	anyExt := false
	type modelSweep struct {
		isModel     bool
		ans         []relation.Tuple
		ext         []relation.Tuple
		universeExt bool
		anyExt      bool
	}
	probe := func(ctx context.Context, idx int, db *relation.Database) (modelSweep, error) {
		s := modelSweep{universeExt: true}
		ok, err := p.satisfiesCCs(ctx, db)
		if err != nil || !ok {
			return s, err
		}
		s.isModel = true
		s.ans, err = p.answers(ctx, db)
		if err != nil {
			return s, err
		}
		// Enumerate extensions of db with up to extra added tuples.
		var lattice []relation.Located
		for _, r := range p.Schema.Relations() {
			done, err := p.tuplesOver(ctx, r, adm, func(t relation.Tuple) (bool, error) {
				if !db.Relation(r.Name).Contains(t) {
					lattice = append(lattice, relation.Located{Rel: r.Name, Tuple: t})
				}
				return true, nil
			})
			if err != nil {
				return s, err
			}
			if !done {
				return s, p.budgetErr("reference lattice over "+r.Name, "MaxValuations",
					int64(p.Options.MaxValuations), int64(p.Options.MaxValuations))
			}
		}
		var rec func(start int, cur *relation.Database, added int) error
		rec = func(start int, cur *relation.Database, added int) error {
			if err := ctx.Err(); err != nil {
				return err
			}
			if added > 0 {
				closed, err := p.satisfiesCCs(ctx, cur)
				if err != nil {
					return err
				}
				if !closed {
					return nil
				}
				s.anyExt = true
				ans, err := p.answers(ctx, cur)
				if err != nil {
					return err
				}
				s.ext, s.universeExt = intersectTuples(s.ext, s.universeExt, ans)
			}
			if added == extra {
				return nil
			}
			for i := start; i < len(lattice); i++ {
				if err := rec(i+1, cur.WithTuple(lattice[i].Rel, lattice[i].Tuple), added+1); err != nil {
					return err
				}
			}
			return nil
		}
		if err := rec(0, db, 0); err != nil {
			return s, err
		}
		return s, nil
	}
	var genErr error
	_, err = search.ForEachOrdered(ctx, p.Options.workers(), p.Options.Obs,
		p.modelCandidates(ctx, ci, dom, &genErr), probe,
		func(idx int, s modelSweep) (bool, error) {
			if !s.isModel {
				return true, nil
			}
			anyModel = true
			certT, universeT = intersectTuples(certT, universeT, s.ans)
			if s.anyExt {
				anyExt = true
			}
			if !s.universeExt {
				certExt, universeExt = intersectTuples(certExt, universeExt, s.ext)
			}
			return true, nil
		})
	if err != nil {
		return false, err
	}
	if genErr != nil {
		return false, genErr
	}
	if !anyModel {
		return false, ErrInconsistent
	}
	if !anyExt {
		return true, nil
	}
	inT := make(map[string]bool, len(certT))
	for _, t := range certT {
		inT[t.Key()] = true
	}
	for _, t := range certExt {
		if !inT[t.Key()] {
			return false, nil
		}
	}
	// Certain answers over extensions must equal certain answers over
	// models; by monotonicity certT ⊆ certExt always holds, so
	// containment the other way suffices.
	if p.Query.Monotone() {
		return true, nil
	}
	return false, fmt.Errorf("reference weak completeness for FO: %w", ErrUndecidable)
}
