package core

import (
	"fmt"

	"relcomplete/internal/ctable"
	"relcomplete/internal/relation"
)

// This file contains reference implementations that follow the paper's
// definitions literally — enumerating partially closed extensions tuple
// set by tuple set — rather than through the small-model
// characterisations the production deciders use (Lemmas 4.2/4.3/5.2).
// They are exponential in one more dimension than the deciders and
// exist as executable specifications: the test-suite cross-validates
// every decider against them on randomised small inputs.

// ReferenceGroundComplete checks Section 2.1 completeness by brute
// force: it enumerates every partially closed extension of db obtained
// by adding at most extra tuples over the active domain and compares
// query answers. With extra at least the atom count of the query's
// largest disjunct this is exact for CQ/UCQ/∃FO+ (Lemma 4.2); it is
// also usable for FP and FO queries on small inputs, where no
// production decider exists.
func (p *Problem) ReferenceGroundComplete(db *relation.Database, extra int) (bool, error) {
	closed, err := p.satisfiesCCs(db)
	if err != nil {
		return false, err
	}
	if !closed {
		return false, nil
	}
	a, err := p.adomFor(ctable.FromDatabase(db), p.Query.Calc != nil && p.Query.Lang() != FO, true)
	if err != nil {
		return false, err
	}
	var lattice []relation.Located
	for _, r := range p.Schema.Relations() {
		done, err := p.tuplesOver(r, a, func(t relation.Tuple) (bool, error) {
			if !db.Relation(r.Name).Contains(t) {
				lattice = append(lattice, relation.Located{Rel: r.Name, Tuple: t})
			}
			return true, nil
		})
		if err != nil {
			return false, err
		}
		if !done {
			return false, ErrBudget
		}
	}
	base, err := p.answers(db)
	if err != nil {
		return false, err
	}
	complete := true
	var rec func(start int, cur *relation.Database, added int) error
	rec = func(start int, cur *relation.Database, added int) error {
		if !complete {
			return nil
		}
		if added > 0 {
			closed, err := p.satisfiesCCs(cur)
			if err != nil {
				return err
			}
			if !closed {
				// Supersets stay violating (CC monotonicity): prune.
				return nil
			}
			ans, err := p.answers(cur)
			if err != nil {
				return err
			}
			if !equalTupleSets(base, ans) {
				complete = false
				return nil
			}
		}
		if added == extra {
			return nil
		}
		for i := start; i < len(lattice); i++ {
			if err := rec(i+1, cur.WithTuple(lattice[i].Rel, lattice[i].Tuple), added+1); err != nil {
				return err
			}
			if !complete {
				return nil
			}
		}
		return nil
	}
	if err := rec(0, db, 0); err != nil {
		return false, err
	}
	return complete, nil
}

// ReferenceRCDP mirrors RCDP through ReferenceGroundComplete.
func (p *Problem) ReferenceRCDP(ci *ctable.CInstance, m Model, extra int) (bool, error) {
	d, err := p.domainsFor(ci, p.Query.Calc != nil && p.Query.Lang() != FO, true)
	if err != nil {
		return false, err
	}
	switch m {
	case Strong:
		all := true
		any := false
		err = p.forEachModel(ci, d, func(db *relation.Database, mu ctable.Valuation) (bool, error) {
			any = true
			ok, err := p.ReferenceGroundComplete(db, extra)
			if err != nil {
				return false, err
			}
			if !ok {
				all = false
				return false, nil
			}
			return true, nil
		})
		if err != nil {
			return false, err
		}
		if !any {
			return false, ErrInconsistent
		}
		return all, nil
	case Viable:
		found := false
		any := false
		err = p.forEachModel(ci, d, func(db *relation.Database, mu ctable.Valuation) (bool, error) {
			any = true
			ok, err := p.ReferenceGroundComplete(db, extra)
			if err != nil {
				return false, err
			}
			if ok {
				found = true
				return false, nil
			}
			return true, nil
		})
		if err != nil {
			return false, err
		}
		if !any {
			return false, ErrInconsistent
		}
		return found, nil
	default:
		return p.referenceWeakComplete(ci, extra)
	}
}

// referenceWeakComplete computes the weak-model definition directly:
// ∩_{I∈Mod} Q(I) versus ∩_{I∈Mod, I'∈Ext(I), |I'\I| ≤ extra} Q(I').
func (p *Problem) referenceWeakComplete(ci *ctable.CInstance, extra int) (bool, error) {
	dom, err := p.domainsFor(ci, false, true)
	if err != nil {
		return false, err
	}
	adm := dom.a
	var certT []relation.Tuple
	universeT := true
	var certExt []relation.Tuple
	universeExt := true
	anyModel := false
	anyExt := false
	err = p.forEachModel(ci, dom, func(db *relation.Database, mu ctable.Valuation) (bool, error) {
		anyModel = true
		ans, err := p.answers(db)
		if err != nil {
			return false, err
		}
		certT, universeT = intersectTuples(certT, universeT, ans)
		// Enumerate extensions of db with up to extra added tuples.
		var lattice []relation.Located
		for _, r := range p.Schema.Relations() {
			done, err := p.tuplesOver(r, adm, func(t relation.Tuple) (bool, error) {
				if !db.Relation(r.Name).Contains(t) {
					lattice = append(lattice, relation.Located{Rel: r.Name, Tuple: t})
				}
				return true, nil
			})
			if err != nil {
				return false, err
			}
			if !done {
				return false, ErrBudget
			}
		}
		var rec func(start int, cur *relation.Database, added int) error
		rec = func(start int, cur *relation.Database, added int) error {
			if added > 0 {
				closed, err := p.satisfiesCCs(cur)
				if err != nil {
					return err
				}
				if !closed {
					return nil
				}
				anyExt = true
				ans, err := p.answers(cur)
				if err != nil {
					return err
				}
				certExt, universeExt = intersectTuples(certExt, universeExt, ans)
			}
			if added == extra {
				return nil
			}
			for i := start; i < len(lattice); i++ {
				if err := rec(i+1, cur.WithTuple(lattice[i].Rel, lattice[i].Tuple), added+1); err != nil {
					return err
				}
			}
			return nil
		}
		if err := rec(0, db, 0); err != nil {
			return false, err
		}
		return true, nil
	})
	if err != nil {
		return false, err
	}
	if !anyModel {
		return false, ErrInconsistent
	}
	if !anyExt {
		return true, nil
	}
	inT := make(map[string]bool, len(certT))
	for _, t := range certT {
		inT[t.Key()] = true
	}
	for _, t := range certExt {
		if !inT[t.Key()] {
			return false, nil
		}
	}
	// Certain answers over extensions must equal certain answers over
	// models; by monotonicity certT ⊆ certExt always holds, so
	// containment the other way suffices.
	if p.Query.Monotone() {
		return true, nil
	}
	return false, fmt.Errorf("reference weak completeness for FO: %w", ErrUndecidable)
}
