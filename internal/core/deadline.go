package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"relcomplete/internal/obs"
)

// ErrDeadline is the sentinel every DeadlineError unwraps to: the
// context expired (deadline or cancellation) before the decision
// completed. Like ErrBudget it marks a resource failure, not a
// verdict — the instance may well be decidable with more time.
var ErrDeadline = errors.New("relcomplete: deadline exceeded before the decision completed")

// Progress is the work snapshot a DeadlineError carries: how far the
// decision had gotten when the context fired, measured as deltas of
// the obs counters over the cancelled call. All fields are zero when
// the Problem has no Options.Obs attached.
type Progress struct {
	// ModelsChecked and ModelsAdmitted count candidate models tested
	// against the CCs and admitted by them; ModelsPruned is the
	// difference (candidates the CCs rejected).
	ModelsChecked  int64
	ModelsAdmitted int64
	ModelsPruned   int64
	// ValuationsEnumerated counts valuations of c-table variables tried.
	ValuationsEnumerated int64
	// ExtensionsTested counts candidate extensions tested by the
	// RCDP/MINP searches.
	ExtensionsTested int64
}

// DeadlineError reports that a decider was cut short by its context,
// carrying the operation name, how long it ran, a Progress snapshot
// and a human-readable partial result ("no counterexample found in 17
// models") where the search semantics permit one.
//
// DeadlineError unwraps to both ErrDeadline and the context's own
// cause, so all of these hold:
//
//	errors.Is(err, core.ErrDeadline)
//	errors.Is(err, context.DeadlineExceeded) // when the deadline fired
//	errors.Is(err, context.Canceled)         // when the caller cancelled
//
// and errors.As(err, *(*DeadlineError)) recovers the detail.
type DeadlineError struct {
	// Op names the interrupted decision, e.g. "consistency" or
	// "rcdp_strong".
	Op string
	// Elapsed is the wall time from the decider entry point to the
	// abort.
	Elapsed time.Duration
	// Progress is the work done by the cancelled call.
	Progress Progress
	// Partial is a one-line partial-result statement, or "" when the
	// decider cannot say anything sound about the explored prefix.
	Partial string

	cause error // the context error: Canceled or DeadlineExceeded
}

// Error renders the abort with its partial-result detail.
func (e *DeadlineError) Error() string {
	if e.Partial == "" {
		return fmt.Sprintf("%s: %v after %v", e.Op, e.cause, e.Elapsed)
	}
	return fmt.Sprintf("%s: %v after %v (%s)", e.Op, e.cause, e.Elapsed, e.Partial)
}

// Unwrap exposes ErrDeadline and the context cause for errors.Is.
func (e *DeadlineError) Unwrap() []error { return []error{ErrDeadline, e.cause} }

// progressNow reads the obs counters a DeadlineError snapshots. Taken
// once at decider entry and once at abort; the delta is the cancelled
// call's own work (approximately so under concurrent callers sharing
// one Metrics, exactly so for the usual one-problem-one-call pattern).
func (p *Problem) progressNow() Progress {
	m := p.Options.Obs
	return Progress{
		ModelsChecked:        m.Get(obs.ModelsChecked),
		ModelsAdmitted:       m.Get(obs.ModelsAdmitted),
		ValuationsEnumerated: m.Get(obs.ValuationsEnumerated),
		ExtensionsTested:     m.Get(obs.ExtensionsTested),
	}
}

// opGuard wraps one ...Ctx decider call: it remembers the entry time
// and counter baseline so a context abort can be dressed up as a
// DeadlineError with a progress delta. A nil *opGuard is inert — the
// context-free fast path (ctx.Done() == nil) costs one nil test per
// decider call and nothing else.
type opGuard struct {
	ctx        context.Context
	op         string
	partialFmt string // fmt verb %d receives Progress.ModelsChecked; "" for no partial
	start      time.Time
	base       Progress
	p          *Problem
}

// beginOp starts the guard for one decider call. It returns nil for
// contexts that can never fire (Background and friends), keeping the
// default path free of time.Now calls and counter reads.
func (p *Problem) beginOp(ctx context.Context, op, partialFmt string) *opGuard {
	if ctx.Done() == nil {
		return nil
	}
	return &opGuard{
		ctx:        ctx,
		op:         op,
		partialFmt: partialFmt,
		start:      time.Now(),
		base:       p.progressNow(),
		p:          p,
	}
}

// wrap converts a context abort bubbling out of the guarded call into
// a *DeadlineError; every other error (nil, budget, undecidable, an
// already-wrapped DeadlineError from a nested decider) passes through
// unchanged. The innermost decider's annotation wins: DeadlineError's
// Unwrap exposes the context cause, so without the errors.As check an
// outer guard would re-wrap a nested error and misreport the op.
func (g *opGuard) wrap(err error) error {
	if g == nil || err == nil {
		return err
	}
	var de *DeadlineError
	if errors.As(err, &de) {
		return err
	}
	if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	now := g.p.progressNow()
	delta := Progress{
		ModelsChecked:        now.ModelsChecked - g.base.ModelsChecked,
		ModelsAdmitted:       now.ModelsAdmitted - g.base.ModelsAdmitted,
		ValuationsEnumerated: now.ValuationsEnumerated - g.base.ValuationsEnumerated,
		ExtensionsTested:     now.ExtensionsTested - g.base.ExtensionsTested,
	}
	delta.ModelsPruned = delta.ModelsChecked - delta.ModelsAdmitted
	partial := ""
	if g.partialFmt != "" {
		partial = fmt.Sprintf(g.partialFmt, delta.ModelsChecked)
	}
	g.p.Options.Obs.Inc(obs.DeadlineErrors)
	if dl, ok := g.ctx.Deadline(); ok {
		if late := time.Since(dl); late > 0 {
			g.p.Options.Obs.ObserveDuration(obs.CancelLatencyNs, late)
		}
	}
	cause := g.ctx.Err()
	if cause == nil {
		// The error carried a context sentinel but this guard's own
		// context is still live (e.g. a derived context fired); keep the
		// sentinel we saw.
		if errors.Is(err, context.DeadlineExceeded) {
			cause = context.DeadlineExceeded
		} else {
			cause = context.Canceled
		}
	}
	return &DeadlineError{
		Op:       g.op,
		Elapsed:  time.Since(g.start),
		Progress: delta,
		Partial:  partial,
		cause:    cause,
	}
}
