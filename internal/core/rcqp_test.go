package core

import (
	"errors"
	"testing"

	"relcomplete/internal/cc"
	"relcomplete/internal/query"
	"relcomplete/internal/relation"
)

func rcqpFixture(t testing.TB, masterVals []relation.Value, qsrc string, projectionCCs bool) *Problem {
	t.Helper()
	schema := relation.MustDBSchema(
		relation.MustSchema("R", relation.Attr("A", nil), relation.Attr("B", nil)),
		relation.MustSchema("S", relation.Attr("C", nil)),
	)
	masterSchema := relation.MustDBSchema(relation.MustSchema("M", relation.Attr("K", nil)))
	dm := relation.NewDatabase(masterSchema)
	for _, v := range masterVals {
		dm.MustInsert("M", relation.T(v))
	}
	var v *cc.Set
	if projectionCCs {
		ind := cc.IND{FromRel: "R", FromAttrs: []string{"A"}, ToRel: "M", ToAttrs: []string{"K"}}
		c, err := ind.AsCC(schema, masterSchema)
		if err != nil {
			t.Fatal(err)
		}
		v = cc.NewSet(c)
	} else {
		v = cc.NewSet(cc.MustParse("sel", "q(x) := R(x, y) & y = '1'", "p(x) := M(x)"))
	}
	return MustProblem(schema, CalcQuery(query.MustParseQuery(qsrc)), dm, v, Options{})
}

func TestRCQPBoundedQueryWithINDs(t *testing.T) {
	// Head variable x appears at R.A which is covered by the IND
	// R[A] ⊆ M[K]: the query is bounded, so a complete database exists.
	p := rcqpFixture(t, []relation.Value{"1", "2"}, "Q(x) := R(x, y)", true)
	for _, m := range []Model{Strong, Viable} {
		ok, err := p.RCQP(m)
		if err != nil {
			t.Fatalf("RCQP(%v): %v", m, err)
		}
		if !ok {
			t.Fatalf("bounded query must have a complete database (%v)", m)
		}
	}
	bounded, err := p.QueryBounded()
	if err != nil || !bounded {
		t.Fatal("QueryBounded should hold")
	}
}

func TestRCQPUnboundedSatisfiableWithINDs(t *testing.T) {
	// Q(y) projects R.B, which no IND covers: unbounded; and the query
	// is satisfiable under V, so no complete database exists.
	p := rcqpFixture(t, []relation.Value{"1"}, "Q(y) := R(x, y)", true)
	ok, err := p.RCQP(Strong)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("unbounded satisfiable query has no complete database")
	}
}

func TestRCQPUnsatisfiableWithINDs(t *testing.T) {
	// Empty master: any R tuple violates R[A] ⊆ M[K], so the query can
	// never produce an answer on a partially closed instance — every
	// partially closed instance is complete.
	p := rcqpFixture(t, nil, "Q(y) := R(x, y)", true)
	ok, err := p.RCQP(Strong)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("unsatisfiable-under-V query: RCQ is non-empty")
	}
}

func TestRCQPBooleanQueryBounded(t *testing.T) {
	// Boolean queries have no head variables: trivially bounded.
	p := rcqpFixture(t, []relation.Value{"1"}, "Q() := exists x, y: R(x, y)", true)
	ok, err := p.RCQP(Viable)
	if err != nil || !ok {
		t.Fatalf("Boolean query should have a complete database: %v %v", ok, err)
	}
}

func TestRCQPFiniteDomainBoundsHead(t *testing.T) {
	// A head variable over a finite attribute domain is bounded even
	// without INDs covering it.
	schema := relation.MustDBSchema(relation.MustSchema("B", relation.Attr("V", relation.Bool())))
	p := MustProblem(schema, CalcQuery(query.MustParseQuery("Q(x) := B(x)")), nil, nil, Options{})
	ok, err := p.RCQP(Strong)
	if err != nil || !ok {
		t.Fatalf("finite-domain head is bounded: %v %v", ok, err)
	}
}

func TestRCQPGeneralSearchFindsWitness(t *testing.T) {
	// Non-projection CC: σ_{B='1'}(R) projected on A must lie in M.
	// Q(x) := R(x, '1'): master {1} pins the only answer-producing
	// tuple; {R(1,1)} is complete (new B≠1 tuples never affect Q).
	p := rcqpFixture(t, []relation.Value{"1"}, "Q(x) := R(x, '1')", false)
	ok, err := p.RCQP(Strong)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("witness {R(1,1)} of size 1 should be found")
	}
}

func TestRCQPGeneralSearchInconclusive(t *testing.T) {
	// No CCs at all and an unbounded head: no instance is ever
	// complete; the bounded search must admit inconclusiveness.
	schema := relation.MustDBSchema(relation.MustSchema("R", relation.Attr("A", nil)))
	p := MustProblem(schema, CalcQuery(query.MustParseQuery("Q(x) := R(x) & x != 'c'")), nil,
		cc.NewSet(cc.MustParse("nontriv", "q() := R('zzz') & 'a' = 'b'", "p() := exists x: R(x) & 'a' = 'b'")), Options{})
	// The CC above is non-projection (has comparisons) but vacuous, so
	// the general search runs and finds nothing.
	_, err := p.RCQP(Strong)
	if !errors.Is(err, ErrInconclusive) {
		t.Fatalf("want ErrInconclusive, got %v", err)
	}
}

func TestRCQPEmptyInstanceWitness(t *testing.T) {
	// The empty instance is complete when the query is unsatisfiable
	// under V (general search, size 0 witness). Non-projection CC: any
	// R tuple at all is forbidden.
	schema := relation.MustDBSchema(relation.MustSchema("R", relation.Attr("A", nil), relation.Attr("B", nil)))
	masterSchema := relation.MustDBSchema(relation.MustSchema("Empty", relation.Attr("W", nil)))
	dm := relation.NewDatabase(masterSchema)
	v := cc.NewSet(cc.MustParse("deny", "q() := exists x, y: R(x, y) & x != y",
		"p() := exists w: Empty(w)"))
	v.Add(cc.MustParse("deny2", "q() := exists x: R(x, x)", "p() := exists w: Empty(w)"))
	p := MustProblem(schema, CalcQuery(query.MustParseQuery("Q(x) := R(x, y)")), dm, v, Options{})
	ok, err := p.RCQP(Viable)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("empty instance is complete: R can never be populated")
	}
}

func TestRCQPStrongViableCoincide(t *testing.T) {
	// Lemma 4.4 / Corollary 6.2.
	fixtures := []*Problem{
		rcqpFixture(t, []relation.Value{"1", "2"}, "Q(x) := R(x, y)", true),
		rcqpFixture(t, []relation.Value{"1"}, "Q(y) := R(x, y)", true),
		rcqpFixture(t, nil, "Q(y) := R(x, y)", true),
	}
	for i, p := range fixtures {
		s, err1 := p.RCQP(Strong)
		v, err2 := p.RCQP(Viable)
		if (err1 == nil) != (err2 == nil) || s != v {
			t.Fatalf("fixture %d: strong %v/%v vs viable %v/%v", i, s, err1, v, err2)
		}
	}
}
