package core

import (
	"context"

	"relcomplete/internal/adom"
	"relcomplete/internal/ctable"
	"relcomplete/internal/obs"
	"relcomplete/internal/relation"
	"relcomplete/internal/search"
)

// This file implements the basic analyses of Section 3: partial
// closure, the consistency problem and the extensibility problem
// (Proposition 3.3, both Σp2-complete), plus the shared enumeration of
// ModAdom(T, Dm, V) every decider is built on.

// PartiallyClosed reports whether the ground instance satisfies V, i.e.
// (I, Dm) ⊨ V.
func (p *Problem) PartiallyClosed(db *relation.Database) (bool, error) {
	return p.PartiallyClosedCtx(context.Background(), db)
}

// PartiallyClosedCtx is PartiallyClosed honoring the context's deadline
// and cancellation; an abort surfaces as a *DeadlineError.
func (p *Problem) PartiallyClosedCtx(ctx context.Context, db *relation.Database) (bool, error) {
	g := p.beginOp(ctx, "partial_closure", "check interrupted")
	ok, err := p.satisfiesCCs(ctx, db)
	return ok, g.wrap(err)
}

// forEachModel enumerates ModAdom(T, Dm, V): for every valuation µ of
// T's variables over the active domain with (µ(T), Dm) ⊨ V, fn is
// called with µ(T). Distinct valuations yielding the same ground
// instance are deduplicated. Enumeration stops when fn returns false.
// The context is consulted per valuation, so a deadline interrupts the
// enumeration itself, not just the work between candidates.
func (p *Problem) forEachModel(ctx context.Context, ci *ctable.CInstance, d *domains,
	fn func(db *relation.Database, mu ctable.Valuation) (bool, error)) error {
	seen := map[string]bool{}
	visit := func(mu ctable.Valuation) (bool, error) {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		p.Options.Obs.Inc(obs.ValuationsEnumerated)
		db, err := ci.Apply(mu)
		if err != nil {
			return false, err
		}
		key := dbKey(db)
		if seen[key] {
			return true, nil
		}
		seen[key] = true
		ok, err := p.checkModel(ctx, db)
		if err != nil {
			return false, err
		}
		if !ok {
			return true, nil
		}
		return fn(db, mu)
	}
	if d.ty != nil {
		return p.enumerateTyped(ci, d.a, d.ty, visit)
	}
	return d.a.Enumerate(ci.Vars(), ci.VarDomains(), p.Options.MaxValuations, visit)
}

// modelCandidates adapts the ModAdom candidate enumeration to a
// search.Generator for the parallel deciders. Valuations are applied
// and deduplicated on the generator goroutine — the enumerators reuse
// one mutable valuation map, so ci.Apply must not escape to workers —
// and each yielded database is fresh and immutable thereafter. The CC
// check of forEachModel moves into the probes (it is part of the
// per-candidate work worth parallelising), so candidates here are
// "potential models": deduplicated ground instances not yet filtered
// by V.
//
// Enumeration failures (ErrBudget, condition errors) are reported
// through genErr, which the caller must read only after the search
// returns (the search joins its goroutines, establishing the needed
// happens-before edge). A decisive search outcome takes precedence
// over genErr: the sequential loop would have stopped at the decisive
// candidate before ever reaching the enumeration failure, since the
// generator outruns the probes only in the parallel schedule.
func (p *Problem) modelCandidates(ctx context.Context, ci *ctable.CInstance, d *domains, genErr *error) search.Generator[*relation.Database] {
	return func(yield func(*relation.Database) bool) {
		seen := map[string]bool{}
		visit := func(mu ctable.Valuation) (bool, error) {
			if err := ctx.Err(); err != nil {
				return false, err
			}
			p.Options.Obs.Inc(obs.ValuationsEnumerated)
			db, err := ci.Apply(mu)
			if err != nil {
				return false, err
			}
			key := dbKey(db)
			if seen[key] {
				return true, nil
			}
			seen[key] = true
			return yield(db), nil
		}
		var err error
		if d.ty != nil {
			err = p.enumerateTyped(ci, d.a, d.ty, visit)
		} else {
			err = d.a.Enumerate(ci.Vars(), ci.VarDomains(), p.Options.MaxValuations, visit)
		}
		if err != nil {
			*genErr = err
		}
	}
}

// dbKey canonically serialises a ground database for deduplication.
func dbKey(db *relation.Database) string {
	out := ""
	for _, r := range db.Schema().Relations() {
		out += "|" + r.Name + ":"
		for _, t := range db.Relation(r.Name).Sorted() {
			out += t.Key() + ","
		}
	}
	return out
}

// Consistent decides the consistency problem: is Mod(T, Dm, V)
// non-empty? (Proposition 3.3; Σp2-complete.) The CC checks of the
// candidate valuations fan out over Options.Parallelism workers.
func (p *Problem) Consistent(ci *ctable.CInstance) (bool, error) {
	return p.ConsistentCtx(context.Background(), ci)
}

// ConsistentCtx is Consistent honoring the context's deadline and
// cancellation; an abort surfaces as a *DeadlineError.
func (p *Problem) ConsistentCtx(ctx context.Context, ci *ctable.CInstance) (bool, error) {
	ctx, endSpan := p.span(ctx, "consistency")
	defer endSpan()
	g := p.beginOp(ctx, "consistency", "no model found among %d candidates checked")
	d, err := p.domainsFor(ci, false, false)
	if err != nil {
		return false, err
	}
	var genErr error
	probe := func(ctx context.Context, idx int, db *relation.Database) (struct{}, bool, error) {
		ok, err := p.checkModel(ctx, db)
		return struct{}{}, ok, err
	}
	_, found, err := search.FirstHit(ctx, p.Options.workers(), p.Options.Obs,
		p.modelCandidates(ctx, ci, d, &genErr), probe)
	if err != nil {
		return false, g.wrap(err)
	}
	if !found && genErr != nil {
		return false, g.wrap(genErr)
	}
	return found, nil
}

// AnyModel returns one member of ModAdom(T, Dm, V), or nil when the
// c-instance is inconsistent.
func (p *Problem) AnyModel(ci *ctable.CInstance) (*relation.Database, error) {
	return p.AnyModelCtx(context.Background(), ci)
}

// AnyModelCtx is AnyModel honoring the context's deadline.
func (p *Problem) AnyModelCtx(ctx context.Context, ci *ctable.CInstance) (*relation.Database, error) {
	g := p.beginOp(ctx, "any_model", "no model found among %d candidates checked")
	d, err := p.domainsFor(ci, false, false)
	if err != nil {
		return nil, err
	}
	var out *relation.Database
	err = p.forEachModel(ctx, ci, d, func(db *relation.Database, mu ctable.Valuation) (bool, error) {
		out = db
		return false, nil
	})
	return out, g.wrap(err)
}

// Models materialises ModAdom(T, Dm, V) up to max instances (0 = all).
func (p *Problem) Models(ci *ctable.CInstance, max int) ([]*relation.Database, error) {
	return p.ModelsCtx(context.Background(), ci, max)
}

// ModelsCtx is Models honoring the context's deadline.
func (p *Problem) ModelsCtx(ctx context.Context, ci *ctable.CInstance, max int) ([]*relation.Database, error) {
	g := p.beginOp(ctx, "models", "%d candidates checked")
	d, err := p.domainsFor(ci, false, false)
	if err != nil {
		return nil, err
	}
	var out []*relation.Database
	err = p.forEachModel(ctx, ci, d, func(db *relation.Database, mu ctable.Valuation) (bool, error) {
		out = append(out, db)
		return max == 0 || len(out) < max, nil
	})
	return out, g.wrap(err)
}

// Extensible decides the extensibility problem: is Ext(I, Dm, V)
// non-empty? By monotonicity of the CQ queries defining CCs it
// suffices to try single-tuple extensions over the active domain
// (Proposition 3.3; Σp2-complete).
func (p *Problem) Extensible(db *relation.Database) (bool, error) {
	return p.ExtensibleCtx(context.Background(), db)
}

// ExtensibleCtx is Extensible honoring the context's deadline.
func (p *Problem) ExtensibleCtx(ctx context.Context, db *relation.Database) (bool, error) {
	ctx, endSpan := p.span(ctx, "extensibility")
	defer endSpan()
	g := p.beginOp(ctx, "extensibility", "no admissible extension among %d candidates checked")
	d, err := p.domainsFor(ctable.FromDatabase(db), false, true)
	if err != nil {
		return false, err
	}
	found := false
	err = p.forEachSingleTupleExtension(ctx, db, d, func(ext *relation.Database, rel string, t relation.Tuple) (bool, error) {
		found = true
		return false, nil
	})
	return found, g.wrap(err)
}

// forEachSingleTupleExtension enumerates every partially closed
// extension I ∪ {t} of db with t a fresh tuple over the active domain
// (respecting finite attribute domains).
func (p *Problem) forEachSingleTupleExtension(ctx context.Context, db *relation.Database, d *domains,
	fn func(ext *relation.Database, rel string, t relation.Tuple) (bool, error)) error {
	for _, r := range p.Schema.Relations() {
		cont, err := p.latticeOver(ctx, r, d, func(t relation.Tuple) (bool, error) {
			if db.Relation(r.Name).Contains(t) {
				return true, nil
			}
			p.Options.Obs.Inc(obs.ExtensionsTested)
			ext := db.WithTuple(r.Name, t)
			ok, err := p.satisfiesCCs(ctx, ext)
			if err != nil {
				return false, err
			}
			if !ok {
				return true, nil
			}
			return fn(ext, r.Name, t)
		})
		if err != nil || !cont {
			return err
		}
	}
	return nil
}

// latticeOver enumerates the candidate lattice of one relation under
// the typing (or the full Adom lattice when typing is off).
func (p *Problem) latticeOver(ctx context.Context, r *relation.Schema, d *domains,
	fn func(t relation.Tuple) (bool, error)) (bool, error) {
	if d.ty != nil {
		return p.typedTuplesOver(ctx, r, d.a, d.ty, fn)
	}
	return p.tuplesOver(ctx, r, d.a, fn)
}

// tuplesOver enumerates the tuples of the lattice L for one relation:
// every combination of active-domain values admissible in the
// relation's attribute domains. It reports whether enumeration ran to
// completion. The context is consulted per leaf, so a deadline
// interrupts even a lattice whose callback never stops it.
func (p *Problem) tuplesOver(ctx context.Context, r *relation.Schema, a *adom.Adom,
	fn func(t relation.Tuple) (bool, error)) (bool, error) {
	t := make(relation.Tuple, r.Arity())
	tried := 0
	var rec func(i int) (bool, error)
	rec = func(i int) (bool, error) {
		if i == r.Arity() {
			if err := ctx.Err(); err != nil {
				return false, err
			}
			tried++
			if p.Options.MaxValuations > 0 && tried > p.Options.MaxValuations {
				return false, p.budgetErr("tuple lattice over "+r.Name, "MaxValuations",
					int64(p.Options.MaxValuations), int64(tried))
			}
			return fn(t.Clone())
		}
		for _, v := range a.CandidatesFor(r.DomainAt(i)) {
			t[i] = v
			cont, err := rec(i + 1)
			if err != nil || !cont {
				return cont, err
			}
		}
		return true, nil
	}
	return rec(0)
}
