package core

import (
	"errors"
	"testing"

	"relcomplete/internal/cc"
	"relcomplete/internal/ctable"
	"relcomplete/internal/query"
	"relcomplete/internal/relation"
)

// boundedScenario: data schema R(A); master M(A) = {1, 2}; V: R ⊆ M;
// query Q(x) := R(x). Master data caps R at two possible tuples, so
// completeness is decided by which of them are present.
type boundedScenario struct {
	p      *Problem
	schema *relation.DBSchema
}

func newBoundedScenario(t testing.TB, masterVals ...relation.Value) *boundedScenario {
	t.Helper()
	schema := relation.MustDBSchema(relation.MustSchema("R", relation.Attr("A", nil)))
	masterSchema := relation.MustDBSchema(relation.MustSchema("M", relation.Attr("A", nil)))
	dm := relation.NewDatabase(masterSchema)
	for _, v := range masterVals {
		dm.MustInsert("M", relation.T(v))
	}
	v := cc.NewSet(cc.MustParse("rm", "q(x) := R(x)", "p(x) := M(x)"))
	q := CalcQuery(query.MustParseQuery("Q(x) := R(x)"))
	return &boundedScenario{
		p:      MustProblem(schema, q, dm, v, Options{}),
		schema: schema,
	}
}

func (s *boundedScenario) ground(vals ...relation.Value) *ctable.CInstance {
	ci := ctable.NewCInstance(s.schema)
	for _, v := range vals {
		ci.MustAddRow("R", ctable.Row{Terms: []query.Term{query.C(v)}})
	}
	return ci
}

func (s *boundedScenario) withVar(names ...string) *ctable.CInstance {
	ci := ctable.NewCInstance(s.schema)
	for _, n := range names {
		ci.MustAddRow("R", ctable.Row{Terms: []query.Term{query.V(n)}})
	}
	return ci
}

func mustRCDP(t *testing.T, p *Problem, ci *ctable.CInstance, m Model) bool {
	t.Helper()
	ok, err := p.RCDP(ci, m)
	if err != nil {
		t.Fatalf("RCDP(%v): %v", m, err)
	}
	return ok
}

func TestRCDPStrongBoundedScenario(t *testing.T) {
	s := newBoundedScenario(t, "1", "2")
	if !mustRCDP(t, s.p, s.ground("1", "2"), Strong) {
		t.Fatal("full instance should be strongly complete")
	}
	if mustRCDP(t, s.p, s.ground("1"), Strong) {
		t.Fatal("{(1)} extendable by (2): not strongly complete")
	}
	if mustRCDP(t, s.p, s.withVar("x"), Strong) {
		t.Fatal("single-variable instance has incomplete models")
	}
	if mustRCDP(t, s.p, s.withVar("x", "y"), Strong) {
		t.Fatal("{(x),(y)} has collapsing models that are incomplete")
	}
}

func TestRCDPViableBoundedScenario(t *testing.T) {
	s := newBoundedScenario(t, "1", "2")
	// (x),(y) can be valuated to {1, 2}, which is complete.
	if !mustRCDP(t, s.p, s.withVar("x", "y"), Viable) {
		t.Fatal("{(x),(y)} should be viably complete via µ = {x↦1, y↦2}")
	}
	// A single row can never cover both master tuples.
	if mustRCDP(t, s.p, s.withVar("x"), Viable) {
		t.Fatal("one row cannot be viably complete here")
	}
	if !mustRCDP(t, s.p, s.ground("1", "2"), Viable) {
		t.Fatal("ground complete instance is viably complete")
	}
}

func TestRCDPWeakBoundedScenario(t *testing.T) {
	s := newBoundedScenario(t, "1", "2")
	// Full instance: unextendable, weakly complete.
	if !mustRCDP(t, s.p, s.ground("1", "2"), Weak) {
		t.Fatal("unextendable instance is weakly complete")
	}
	// Empty instance: extensions {1} and {2} disagree, certain answer
	// over extensions is empty — weakly complete (Example 2.4 pattern).
	if !mustRCDP(t, s.p, s.ground(), Weak) {
		t.Fatal("empty instance should be weakly complete (certain answers empty)")
	}
	// {(1)}: every extension contains (2) eventually? The only proper
	// extension is {1,2}, whose answer certain-includes (2) ∉ Q({(1)}).
	if mustRCDP(t, s.p, s.ground("1"), Weak) {
		t.Fatal("{(1)} should not be weakly complete")
	}
	// {(x)}: models {1}, {2}; certain answers ∅; extensions force {1,2}.
	if mustRCDP(t, s.p, s.withVar("x"), Weak) {
		t.Fatal("{(x)} should not be weakly complete")
	}
}

func TestRCDPWeakSingletonMaster(t *testing.T) {
	s := newBoundedScenario(t, "1")
	// Unique extension {1}: its answer (1) is certain but absent.
	if mustRCDP(t, s.p, s.ground(), Weak) {
		t.Fatal("empty instance with unique extension is not weakly complete")
	}
	if !mustRCDP(t, s.p, s.ground("1"), Weak) {
		t.Fatal("{(1)} is unextendable, hence weakly complete")
	}
}

func TestStrongImpliesWeakAndViable(t *testing.T) {
	// Observation in Section 2.2(a).
	s := newBoundedScenario(t, "1", "2")
	instances := []*ctable.CInstance{
		s.ground("1", "2"), s.ground("1"), s.ground(), s.withVar("x"), s.withVar("x", "y"),
	}
	for i, ci := range instances {
		strong := mustRCDP(t, s.p, ci, Strong)
		if !strong {
			continue
		}
		if !mustRCDP(t, s.p, ci, Weak) || !mustRCDP(t, s.p, ci, Viable) {
			t.Fatalf("instance %d strongly complete but not weakly/viably complete", i)
		}
	}
}

func TestRCDPExplainCounterexample(t *testing.T) {
	s := newBoundedScenario(t, "1", "2")
	ok, cex, err := s.p.RCDPExplain(s.ground("1"), Strong)
	if err != nil || ok {
		t.Fatalf("expected incomplete: %v %v", ok, err)
	}
	if cex == nil {
		t.Fatal("counterexample missing")
	}
	if !cex.Extension.Extends(cex.Model) {
		t.Fatal("counterexample extension must extend the model")
	}
	if len(cex.Gained) == 0 {
		t.Fatal("counterexample must gain answers")
	}
	if cex.String() == "" || (&Counterexample{}).String() == "" {
		t.Fatal("String should render")
	}
	var nilCex *Counterexample
	if nilCex.String() != "<complete>" {
		t.Fatal("nil counterexample String")
	}
}

func TestRCDPInconsistentInstance(t *testing.T) {
	s := newBoundedScenario(t, "1", "2")
	// (3) violates R ⊆ M: no models.
	bad := s.ground("3")
	for _, m := range []Model{Strong, Weak, Viable} {
		_, err := s.p.RCDP(bad, m)
		if !errors.Is(err, ErrInconsistent) {
			t.Fatalf("model %v: want ErrInconsistent, got %v", m, err)
		}
	}
}

func TestConsistencyAndModels(t *testing.T) {
	s := newBoundedScenario(t, "1", "2")
	ok, err := s.p.Consistent(s.withVar("x"))
	if err != nil || !ok {
		t.Fatalf("consistent instance flagged: %v %v", ok, err)
	}
	ok, err = s.p.Consistent(s.ground("3"))
	if err != nil || ok {
		t.Fatal("out-of-master instance should be inconsistent")
	}
	models, err := s.p.Models(s.withVar("x"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 2 { // {1} and {2}; fresh values violate V
		t.Fatalf("Models = %v", models)
	}
	one, err := s.p.AnyModel(s.withVar("x"))
	if err != nil || one == nil {
		t.Fatal("AnyModel should find a model")
	}
	none, err := s.p.AnyModel(s.ground("3"))
	if err != nil || none != nil {
		t.Fatal("AnyModel of inconsistent instance should be nil")
	}
}

func TestConsistencyWithConditions(t *testing.T) {
	s := newBoundedScenario(t, "1", "2")
	ci := ctable.NewCInstance(s.schema)
	ci.MustAddRow("R", ctable.Row{
		Terms: []query.Term{query.V("x")},
		Cond:  ctable.Cond(ctable.CNeq(query.V("x"), query.C("1")), ctable.CNeq(query.V("x"), query.C("2"))),
	})
	// Any valuation either violates the condition (dropping the row,
	// leaving the empty instance — still a model) or leaves the master.
	ok, err := s.p.Consistent(ci)
	if err != nil || !ok {
		t.Fatal("empty valuation image is still a model")
	}
	models, _ := s.p.Models(ci, 0)
	for _, m := range models {
		if m.Size() != 0 {
			t.Fatalf("only the empty instance can satisfy V: %v", m)
		}
	}
}

func TestExtensibility(t *testing.T) {
	s := newBoundedScenario(t, "1", "2")
	full := relation.NewDatabase(s.schema)
	full.MustInsert("R", relation.T("1"))
	full.MustInsert("R", relation.T("2"))
	ok, err := s.p.Extensible(full)
	if err != nil || ok {
		t.Fatal("saturated instance must not be extensible")
	}
	part := relation.NewDatabase(s.schema)
	part.MustInsert("R", relation.T("1"))
	ok, err = s.p.Extensible(part)
	if err != nil || !ok {
		t.Fatal("{(1)} extends by (2)")
	}
	empty := relation.NewDatabase(s.schema)
	ok, err = s.p.Extensible(empty)
	if err != nil || !ok {
		t.Fatal("empty instance is extensible")
	}
}

func TestPartiallyClosed(t *testing.T) {
	s := newBoundedScenario(t, "1")
	db := relation.NewDatabase(s.schema)
	db.MustInsert("R", relation.T("1"))
	ok, err := s.p.PartiallyClosed(db)
	if err != nil || !ok {
		t.Fatal("within master: partially closed")
	}
	db.MustInsert("R", relation.T("9"))
	ok, err = s.p.PartiallyClosed(db)
	if err != nil || ok {
		t.Fatal("outside master: not partially closed")
	}
}

func TestCertainAnswers(t *testing.T) {
	s := newBoundedScenario(t, "1", "2")
	// {(x)}: models {1}, {2}: certain answers empty.
	ans, err := s.p.CertainAnswers(s.withVar("x"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 0 {
		t.Fatalf("certain answers = %v, want empty", ans)
	}
	// Ground {(1)}: certain answers {(1)}.
	ans, err = s.p.CertainAnswers(s.ground("1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 1 || !ans[0].Equal(relation.T("1")) {
		t.Fatalf("certain answers = %v", ans)
	}
	// Inconsistent instance.
	if _, err := s.p.CertainAnswers(s.ground("3")); !errors.Is(err, ErrInconsistent) {
		t.Fatalf("want ErrInconsistent, got %v", err)
	}
}

func TestCertainAnswersOfExtensions(t *testing.T) {
	s := newBoundedScenario(t, "1", "2")
	// {(1)}: the only proper extension is {1,2}; certain ext answers
	// are {(1),(2)}.
	ans, anyExt, err := s.p.CertainAnswersOfExtensions(s.ground("1"))
	if err != nil {
		t.Fatal(err)
	}
	if !anyExt || len(ans) != 2 {
		t.Fatalf("ext answers = %v anyExt=%v", ans, anyExt)
	}
	// Full instance: no extensions.
	_, anyExt, err = s.p.CertainAnswersOfExtensions(s.ground("1", "2"))
	if err != nil {
		t.Fatal(err)
	}
	if anyExt {
		t.Fatal("saturated instance has no extensions")
	}
}

func TestMINPStrongBoundedScenario(t *testing.T) {
	s := newBoundedScenario(t, "1", "2")
	ok, err := s.p.MINP(s.ground("1", "2"), Strong)
	if err != nil || !ok {
		t.Fatalf("full instance is minimal strongly complete: %v %v", ok, err)
	}
	// Incomplete instances are not minimal complete.
	ok, err = s.p.MINP(s.ground("1"), Strong)
	if err != nil || ok {
		t.Fatal("incomplete instance cannot be minimal")
	}
}

func TestMINPStrongDetectsExcess(t *testing.T) {
	// Master M = {1}; V: R ⊆ M; Q() := R('1') Boolean. The instance
	// {(1)} is complete and minimal... while for query Q'() := exists
	// x: M-independent true-檢... use a second scenario: Q(x) := R(x)
	// with master {1}: {(1)} complete; ∅ is NOT complete (extension
	// {1} changes answer) — so {(1)} is minimal.
	s := newBoundedScenario(t, "1")
	ok, err := s.p.MINP(s.ground("1"), Strong)
	if err != nil || !ok {
		t.Fatalf("{(1)} should be minimal: %v %v", ok, err)
	}

	// Now a query ignoring R entirely: every instance is complete, only
	// ∅ is minimal.
	schema := s.schema
	masterSchema := relation.MustDBSchema(relation.MustSchema("M", relation.Attr("A", nil)))
	dm := relation.NewDatabase(masterSchema)
	dm.MustInsert("M", relation.T("1"))
	v := cc.NewSet(cc.MustParse("rm", "q(x) := R(x)", "p(x) := M(x)"))
	q := CalcQuery(query.MustParseQuery("Q() := '1' = '1'"))
	p2 := MustProblem(schema, q, dm, v, Options{})
	ok, err = p2.MINP(s.ground("1"), Strong)
	if err != nil || ok {
		t.Fatalf("{(1)} carries excess data for a constant query: %v %v", ok, err)
	}
	ok, err = p2.MINP(s.ground(), Strong)
	if err != nil || !ok {
		t.Fatalf("∅ is the minimal complete instance: %v %v", ok, err)
	}
}

func TestMINPViable(t *testing.T) {
	s := newBoundedScenario(t, "1", "2")
	// {(x),(y)} has model {1,2} which is minimal complete.
	ok, err := s.p.MINP(s.withVar("x", "y"), Viable)
	if err != nil || !ok {
		t.Fatalf("{(x),(y)} should be minimal viably complete: %v %v", ok, err)
	}
	// {(x)} has no complete model at all.
	ok, err = s.p.MINP(s.withVar("x"), Viable)
	if err != nil || ok {
		t.Fatal("{(x)} has no complete model")
	}
}

func TestMINPWeakCQLemma57(t *testing.T) {
	// Single-relation schema: the Lemma 5.7 fast path applies.
	s := newBoundedScenario(t, "1", "2")
	// ∅ is weakly complete (two disagreeing extensions) hence minimal.
	ok, err := s.p.MINP(s.ground(), Weak)
	if err != nil || !ok {
		t.Fatalf("∅ should be minimal weakly complete: %v %v", ok, err)
	}
	// Any non-empty instance is then non-minimal.
	ok, err = s.p.MINP(s.ground("1"), Weak)
	if err != nil || ok {
		t.Fatal("{(1)} is not minimal when ∅ is weakly complete")
	}

	// Singleton master: ∅ is not weakly complete; singletons with
	// models are minimal.
	s1 := newBoundedScenario(t, "1")
	ok, err = s1.p.MINP(s1.ground(), Weak)
	if err != nil || ok {
		t.Fatal("∅ not weakly complete with unique extension")
	}
	ok, err = s1.p.MINP(s1.ground("1"), Weak)
	if err != nil || !ok {
		t.Fatalf("singleton should be minimal: %v %v", ok, err)
	}
	ok, err = s1.p.MINP(s1.withVar("x"), Weak)
	if err != nil || !ok {
		t.Fatalf("consistent singleton c-table should be minimal: %v %v", ok, err)
	}
}

func TestUndecidableDispatch(t *testing.T) {
	schema := relation.MustDBSchema(relation.MustSchema("R", relation.Attr("A", nil)))
	foq := CalcQuery(query.MustParseQuery("Q(x) := R(x) & ! R(x)"))
	fpq := FPQuery(query.MustParseProgram("p", schema, "r(x) :- R(x). output r."))
	ci := ctable.NewCInstance(schema)

	mk := func(q Qry) *Problem { return MustProblem(schema, q, nil, nil, Options{}) }

	type combo struct {
		q      Qry
		m      Model
		rcdp   error // expected sentinel (nil = decidable)
		rcqp   error
		minp   error
		ground error // RCQPGround expectation
	}
	combos := []combo{
		{foq, Strong, ErrUndecidable, ErrUndecidable, ErrUndecidable, ErrUndecidable},
		{foq, Weak, ErrUndecidable, ErrOpen, ErrUndecidable, ErrUndecidable},
		{foq, Viable, ErrUndecidable, ErrUndecidable, ErrUndecidable, ErrUndecidable},
		{fpq, Strong, ErrUndecidable, ErrUndecidable, ErrUndecidable, ErrUndecidable},
		{fpq, Weak, nil, nil, nil, nil},
		{fpq, Viable, ErrUndecidable, ErrUndecidable, ErrUndecidable, ErrUndecidable},
	}
	for _, c := range combos {
		p := mk(c.q)
		if _, err := p.RCDP(ci, c.m); !errors.Is(err, c.rcdp) {
			t.Errorf("RCDP(%v, %v): err = %v, want %v", c.q.Lang(), c.m, err, c.rcdp)
		}
		if _, err := p.RCQP(c.m); !errors.Is(err, c.rcqp) {
			t.Errorf("RCQP(%v, %v): err = %v, want %v", c.q.Lang(), c.m, err, c.rcqp)
		}
		if _, err := p.MINP(ci, c.m); !errors.Is(err, c.minp) {
			t.Errorf("MINP(%v, %v): err = %v, want %v", c.q.Lang(), c.m, err, c.minp)
		}
		if _, err := p.RCQPGround(c.m); !errors.Is(err, c.ground) {
			t.Errorf("RCQPGround(%v, %v): err = %v, want %v", c.q.Lang(), c.m, err, c.ground)
		}
	}
}

func TestQryBasics(t *testing.T) {
	q := CalcQuery(query.MustParseQuery("Q(x) := R(x) | S(x)"))
	if q.Lang() != UCQ || !q.Monotone() || q.Arity() != 1 || q.Name() != "Q" {
		t.Fatal("Qry metadata wrong")
	}
	fp := FPQuery(query.MustParseProgram("p", nil, "r(x) :- R(x). output r."))
	if fp.Lang() != FP || fp.Arity() != 1 {
		t.Fatal("FP metadata wrong")
	}
	if fp.String() == "" || q.String() == "" {
		t.Fatal("String empty")
	}
	if CalcQuery(query.MustParseQuery("Q(x) := not R(x)")).Lang() != FO {
		t.Fatal("FO classification wrong")
	}
	if CalcQuery(query.MustParseQuery("Q(x) := R(x)")).Lang() != CQ {
		t.Fatal("CQ classification wrong")
	}
	if CalcQuery(query.MustParseQuery("Q(x) := R(x) & (S(x) | R(x))")).Lang() != EFOPlus {
		t.Fatal("∃FO+ classification wrong")
	}
}

func TestNewProblemValidation(t *testing.T) {
	schema := relation.MustDBSchema(relation.MustSchema("R", relation.Attr("A", nil)))
	if _, err := NewProblem(nil, CalcQuery(query.MustParseQuery("Q(x) := R(x)")), nil, nil, Options{}); err == nil {
		t.Fatal("nil schema should fail")
	}
	if _, err := NewProblem(schema, Qry{}, nil, nil, Options{}); err == nil {
		t.Fatal("empty query should fail")
	}
	if _, err := NewProblem(schema, CalcQuery(query.MustParseQuery("Q(x) := Nope(x)")), nil, nil, Options{}); err == nil {
		t.Fatal("unknown relation should fail")
	}
	bad := Qry{Calc: query.MustParseQuery("Q(x) := R(x)"), Prog: query.MustParseProgram("p", schema, "r(x) :- R(x). output r.")}
	if _, err := NewProblem(schema, bad, nil, nil, Options{}); err == nil {
		t.Fatal("both calc and prog should fail")
	}
	if _, err := NewProblem(schema, FPQuery(query.MustParseProgram("p", nil, "r(x) :- Gone(x). output r.")), nil, nil, Options{}); err == nil {
		t.Fatal("FP over unknown EDB should fail")
	}
}
