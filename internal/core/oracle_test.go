package core

import (
	"errors"
	"math/rand"
	"testing"

	"relcomplete/internal/cc"
	"relcomplete/internal/ctable"
	"relcomplete/internal/query"
	"relcomplete/internal/relation"
)

// Cross-validation: on randomised small problems, every production
// decider agrees with the definition-level reference implementation.
// Finite (Boolean) attribute domains keep the extension lattice small
// enough for the brute force to be exact.

type randomProblem struct {
	p  *Problem
	ci *ctable.CInstance
}

func randomProblems(t testing.TB, seed int64, n int) []randomProblem {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	schema := relation.MustDBSchema(
		relation.MustSchema("R", relation.Attr("A", relation.Bool()), relation.Attr("B", relation.Bool())),
	)
	masterSchema := relation.MustDBSchema(
		relation.MustSchema("M", relation.Attr("A", relation.Bool()), relation.Attr("B", relation.Bool())),
	)
	queries := []string{
		"Q(x) := R(x, y)",
		"Q(x, y) := R(x, y)",
		"Q(x) := R(x, x)",
		"Q(x) := R(x, y) & x != y",
		"Q() := exists x: R(x, x)",
		"Q(x) := R(x, '1') | R('0', x)",
	}
	bools := []relation.Value{"0", "1"}
	var out []randomProblem
	for len(out) < n {
		dm := relation.NewDatabase(masterSchema)
		for _, a := range bools {
			for _, b := range bools {
				if r.Intn(2) == 0 {
					dm.MustInsert("M", relation.T(a, b))
				}
			}
		}
		v := cc.NewSet(cc.MustParse("rm", "q(x, y) := R(x, y)", "p(x, y) := M(x, y)"))
		q := CalcQuery(query.MustParseQuery(queries[r.Intn(len(queries))]))
		p := MustProblem(schema, q, dm, v, Options{})

		ci := ctable.NewCInstance(schema)
		rows := r.Intn(3)
		varPool := []string{"u", "v"}
		for i := 0; i < rows; i++ {
			terms := make([]query.Term, 2)
			for j := range terms {
				if r.Intn(3) == 0 {
					terms[j] = query.V(varPool[r.Intn(len(varPool))])
				} else {
					terms[j] = query.C(bools[r.Intn(2)])
				}
			}
			var cond ctable.Condition
			if r.Intn(4) == 0 && terms[0].IsVar {
				cond = ctable.Cond(ctable.CNeq(terms[0], query.C(bools[r.Intn(2)])))
			}
			ci.MustAddRow("R", ctable.Row{Terms: terms, Cond: cond})
		}
		out = append(out, randomProblem{p: p, ci: ci})
	}
	return out
}

func TestRCDPAgreesWithReference(t *testing.T) {
	for i, rp := range randomProblems(t, 101, 120) {
		for _, m := range []Model{Strong, Weak, Viable} {
			got, errGot := rp.p.RCDP(rp.ci, m)
			want, errWant := rp.p.ReferenceRCDP(rp.ci, m, 3)
			if errors.Is(errGot, ErrInconsistent) || errors.Is(errWant, ErrInconsistent) {
				if !errors.Is(errGot, ErrInconsistent) || !errors.Is(errWant, ErrInconsistent) {
					t.Fatalf("case %d model %v: inconsistency disagreement %v vs %v", i, m, errGot, errWant)
				}
				continue
			}
			if errGot != nil || errWant != nil {
				t.Fatalf("case %d model %v: errors %v / %v", i, m, errGot, errWant)
			}
			if got != want {
				t.Fatalf("case %d model %v: decider %v vs reference %v\nquery: %s\nci: %v\nmaster: %v",
					i, m, got, want, rp.p.Query, rp.ci, rp.p.Master)
			}
		}
	}
}

func TestGroundCompleteAgreesWithReference(t *testing.T) {
	for i, rp := range randomProblems(t, 202, 80) {
		db, err := rp.p.AnyModel(rp.ci)
		if err != nil {
			t.Fatal(err)
		}
		if db == nil {
			continue
		}
		got, _, errGot := rp.p.GroundComplete(db)
		want, errWant := rp.p.ReferenceGroundComplete(db, 3)
		if errGot != nil || errWant != nil {
			t.Fatalf("case %d: errors %v / %v", i, errGot, errWant)
		}
		if got != want {
			t.Fatalf("case %d: GroundComplete %v vs reference %v\nquery: %s\ndb: %v\nmaster: %v",
				i, got, want, rp.p.Query, db, rp.p.Master)
		}
	}
}

// The weak-model decider must also agree with the reference for FP
// queries (strong/viable are undecidable there).
func TestWeakFPAgreesWithReference(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	schema := relation.MustDBSchema(
		relation.MustSchema("edge", relation.Attr("A", relation.Bool()), relation.Attr("B", relation.Bool())),
	)
	masterSchema := relation.MustDBSchema(
		relation.MustSchema("medge", relation.Attr("A", relation.Bool()), relation.Attr("B", relation.Bool())),
	)
	prog := query.MustParseProgram("reach", schema, `
		reach(x, y) :- edge(x, y).
		reach(x, z) :- reach(x, y), edge(y, z).
		output reach.
	`)
	bools := []relation.Value{"0", "1"}
	for trial := 0; trial < 40; trial++ {
		dm := relation.NewDatabase(masterSchema)
		for _, a := range bools {
			for _, b := range bools {
				if r.Intn(2) == 0 {
					dm.MustInsert("medge", relation.T(a, b))
				}
			}
		}
		v := cc.NewSet(cc.MustParse("em", "q(x, y) := edge(x, y)", "p(x, y) := medge(x, y)"))
		p := MustProblem(schema, FPQuery(prog), dm, v, Options{})
		ci := ctable.NewCInstance(schema)
		for i := 0; i < r.Intn(3); i++ {
			terms := make([]query.Term, 2)
			for j := range terms {
				if r.Intn(4) == 0 {
					terms[j] = query.V("w")
				} else {
					terms[j] = query.C(bools[r.Intn(2)])
				}
			}
			ci.MustAddRow("edge", ctable.Row{Terms: terms})
		}
		got, errGot := p.RCDP(ci, Weak)
		want, errWant := p.ReferenceRCDP(ci, Weak, 3)
		if errors.Is(errGot, ErrInconsistent) && errors.Is(errWant, ErrInconsistent) {
			continue
		}
		if errGot != nil || errWant != nil {
			t.Fatalf("trial %d: errors %v / %v", trial, errGot, errWant)
		}
		if got != want {
			t.Fatalf("trial %d: weak FP decider %v vs reference %v\nci: %v\nmaster: %v",
				trial, got, want, ci, dm)
		}
	}
}

func TestMINPStrongAgreesWithGroundMinimal(t *testing.T) {
	// On ground c-instances, MINP strong coincides with GroundMinimal.
	for i, rp := range randomProblems(t, 303, 60) {
		if !rp.ci.IsGround() {
			continue
		}
		db, err := rp.ci.Apply(ctable.Valuation{})
		if err != nil {
			t.Fatal(err)
		}
		closed, err := rp.p.PartiallyClosed(db)
		if err != nil {
			t.Fatal(err)
		}
		if !closed {
			continue
		}
		viaCI, err := rp.p.MINP(rp.ci, Strong)
		if err != nil {
			t.Fatal(err)
		}
		viaGround, err := rp.p.GroundMinimal(db)
		if err != nil {
			t.Fatal(err)
		}
		if viaCI != viaGround {
			t.Fatalf("case %d: MINP strong %v vs GroundMinimal %v", i, viaCI, viaGround)
		}
	}
}

func TestMINPViableImpliedByStrongOnGround(t *testing.T) {
	// For ground instances Mod(T) = {I}, so strong and viable MINP
	// coincide (Section 2.2 observation (b)).
	for i, rp := range randomProblems(t, 404, 60) {
		if !rp.ci.IsGround() {
			continue
		}
		ok, err := rp.p.Consistent(rp.ci)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			continue
		}
		s, err1 := rp.p.MINP(rp.ci, Strong)
		v, err2 := rp.p.MINP(rp.ci, Viable)
		if err1 != nil || err2 != nil {
			t.Fatalf("case %d: %v / %v", i, err1, err2)
		}
		if s != v {
			t.Fatalf("case %d: ground strong MINP %v != viable MINP %v", i, s, v)
		}
	}
}
