module relcomplete

go 1.22
