package relcomplete_test

import (
	"errors"
	"testing"

	rc "relcomplete"
)

// End-to-end smoke test of the public facade: the bounded-by-master
// scenario, exercised purely through the root package.
func TestFacadeEndToEnd(t *testing.T) {
	order, err := rc.NewSchema("Order", rc.Attr("item", nil), rc.Attr("qty", nil))
	if err != nil {
		t.Fatal(err)
	}
	catalog, err := rc.NewSchema("Catalog", rc.Attr("item", nil))
	if err != nil {
		t.Fatal(err)
	}
	schema, err := rc.NewDBSchema(order)
	if err != nil {
		t.Fatal(err)
	}
	masterSchema, err := rc.NewDBSchema(catalog)
	if err != nil {
		t.Fatal(err)
	}
	dm := rc.NewDatabase(masterSchema)
	dm.MustInsert("Catalog", rc.T("widget"))

	constraint, err := rc.ParseConstraint("item_bound",
		"q(i) := Order(i, q)", "p(i) := Catalog(i)")
	if err != nil {
		t.Fatal(err)
	}
	q, err := rc.ParseQuery("Q(q) := Order('widget', q)")
	if err != nil {
		t.Fatal(err)
	}
	p, err := rc.NewProblem(schema, rc.CalcQuery(q), dm, rc.NewConstraintSet(constraint), rc.Options{})
	if err != nil {
		t.Fatal(err)
	}

	ci := rc.NewCInstance(schema)
	ci.MustAddRow("Order", rc.Row{Terms: []rc.Term{rc.C("widget"), rc.V("x")},
		Cond: rc.Cond(rc.Neq(rc.V("x"), rc.C("0")))})

	ok, err := p.Consistent(ci)
	if err != nil || !ok {
		t.Fatalf("Consistent: %v %v", ok, err)
	}
	// Quantities are open-world: no valuation makes the instance
	// strongly or viably complete; but because no answer is ever
	// CERTAIN (the missing quantity ranges over an infinite domain),
	// the c-instance is weakly complete.
	for _, m := range []rc.Model{rc.Strong, rc.Viable} {
		complete, err := p.RCDP(ci, m)
		if err != nil {
			t.Fatalf("RCDP(%v): %v", m, err)
		}
		if complete {
			t.Fatalf("open-world quantities cannot be %v complete", m)
		}
	}
	weak, err := p.RCDP(ci, rc.Weak)
	if err != nil {
		t.Fatal(err)
	}
	if !weak {
		t.Fatal("no certain answers: weakly complete")
	}

	// A ground instance pins the quantity. It is still weakly
	// complete: extensions only add answers that are never certain
	// (each extension adds a different quantity). It is not strongly
	// complete: more quantities can always arrive.
	db := rc.NewDatabase(schema)
	db.MustInsert("Order", rc.T("widget", "5"))
	ground := rc.GroundCInstance(db)
	weak, err = p.RCDP(ground, rc.Weak)
	if err != nil {
		t.Fatal(err)
	}
	if !weak {
		t.Fatal("ground instance: added quantities are never certain, so weakly complete")
	}
	strong, err := p.RCDP(ground, rc.Strong)
	if err != nil {
		t.Fatal(err)
	}
	if strong {
		t.Fatal("ground instance is not strongly complete: quantities can still arrive")
	}
	// Weak RCQP is trivially true.
	ok, err = p.RCQP(rc.Weak)
	if err != nil || !ok {
		t.Fatal("weak RCQP should hold")
	}
}

func TestFacadeFPAndErrors(t *testing.T) {
	edge, _ := rc.NewSchema("edge", rc.Attr("A", nil), rc.Attr("B", nil))
	schema, _ := rc.NewDBSchema(edge)
	prog, err := rc.ParseProgram("reach", schema, `
		reach(x, y) :- edge(x, y).
		reach(x, z) :- reach(x, y), edge(y, z).
		output reach.
	`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := rc.NewProblem(schema, rc.FPQuery(prog), nil, nil, rc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ci := rc.NewCInstance(schema)
	if _, err := p.RCDP(ci, rc.Strong); !errors.Is(err, rc.ErrUndecidable) {
		t.Fatalf("RCDPs(FP) must be undecidable: %v", err)
	}
	if _, err := p.RCDP(ci, rc.Weak); err != nil {
		t.Fatalf("RCDPw(FP) must be decidable: %v", err)
	}
}

func TestFacadeDomains(t *testing.T) {
	d := rc.FiniteDomain("rgb", "r", "g", "b")
	if !d.Contains("g") || d.Contains("x") {
		t.Fatal("finite domain wrong")
	}
	if got := rc.BoolDomain().Values(); len(got) != 2 {
		t.Fatal("bool domain wrong")
	}
	if !rc.V("x").IsVar || rc.C("k").IsVar {
		t.Fatal("term constructors wrong")
	}
	if rc.T("a", "b").Key() == rc.T("ab").Key() {
		t.Fatal("tuple keys must be injective")
	}
}

func TestFacadeGroundCInstance(t *testing.T) {
	r, _ := rc.NewSchema("R", rc.Attr("A", nil))
	schema, _ := rc.NewDBSchema(r)
	db := rc.NewDatabase(schema)
	db.MustInsert("R", rc.T("1"))
	ci := rc.GroundCInstance(db)
	if !ci.IsGround() || ci.Size() != 1 {
		t.Fatal("GroundCInstance wrong")
	}
}
