// Command rcbench reruns the reproduction experiments of EXPERIMENTS.md
// and prints a Table-I-shaped report: for each (problem, model,
// language) cell of the paper it exercises the decider on a scaling
// input family, cross-checks the verdicts against the brute-force
// logic oracles where a reduction family is used, and reports the
// measured growth. Absolute numbers are machine-specific; the shape —
// who is decidable, what explodes, what stays polynomial — is the
// reproduction target.
//
// Usage:
//
//	rcbench                     # full sweep (~a few minutes)
//	rcbench -quick              # reduced sizes
//	rcbench -run MINP           # only experiments whose id contains "MINP"
//	rcbench -workers 8          # worker count for the candidate searches
//	rcbench -naivejoin          # ablation: nested-loop joins instead of compiled plans
//	rcbench -boxed              # ablation: boxed relation storage instead of interned ids
//	rcbench -cpuprofile cpu.pb  # write a pprof CPU profile of the sweep
//	rcbench -memprofile mem.pb  # write a pprof heap profile at exit
//	rcbench -trace              # stream the decision trace to stderr
//	rcbench -stats              # print aggregated solver counters after the sweep
//	rcbench -http :8080         # /metrics, /debug/plans, expvar + net/http/pprof while running
//	rcbench -slowlog 250ms      # dump the flight recorder when a decider call stalls
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"relcomplete/internal/cc"
	"relcomplete/internal/core"
	"relcomplete/internal/ctable"
	"relcomplete/internal/eval"
	"relcomplete/internal/httpx"
	"relcomplete/internal/obs"
	"relcomplete/internal/paperex"
	"relcomplete/internal/query"
	"relcomplete/internal/reduction"
	"relcomplete/internal/relation"
	"relcomplete/internal/tractable"
	"relcomplete/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rcbench:", err)
		os.Exit(1)
	}
}

type row struct {
	size    string
	verdict string
	agree   string // oracle agreement, "-" when no oracle applies
	elapsed time.Duration
}

type experiment struct {
	id    string
	cell  string // Table I cell / artifact
	runFn func(quick bool) ([]row, error)
}

// workersFlag and naiveJoinFlag hold the -workers and -naivejoin values
// for the current run; every experiment builds its Problem from
// benchOpts so the settings reach the deciders. benchMetrics and the
// benchRing flight recorder are always attached (both are cheap);
// benchTracer is the flight-recorder tracer, upgraded to a verbose
// teed tracer under -trace.
var (
	workersFlag   int
	naiveJoinFlag bool
	boxedFlag     bool
	slowOpFlag    time.Duration
	benchMetrics  = obs.NewMetrics()
	benchRing     = obs.NewRingSink(obs.DefaultRingSize)
	benchTracer   = obs.NewFlightTracer(benchRing)
	// benchProfiles is the sweep-wide plan-profile registry: experiments
	// build transient problems, so the shared registry (via
	// Options.Profiles) is what lets -http's /debug/plans rank plans
	// across the whole sweep.
	benchProfiles = &eval.ProfileRegistry{}

	// benchCtx bounds every experiment's decider calls; -timeout
	// replaces it with a deadline context for the whole sweep.
	benchCtx = context.Background()
)

// benchOpts is the Options value each experiment starts from.
func benchOpts() core.Options {
	return core.Options{
		Parallelism: workersFlag, NaiveJoin: naiveJoinFlag, Boxed: boxedFlag,
		Obs: benchMetrics, Trace: benchTracer, Profiles: benchProfiles,
		FlightRecorder: benchRing, SlowOpThreshold: slowOpFlag,
	}
}

// applyBenchOpts pushes the run-wide flags into a gadget-built Problem.
func applyBenchOpts(o *core.Options) {
	o.Parallelism = workersFlag
	o.NaiveJoin = naiveJoinFlag
	o.Boxed = boxedFlag
	o.Obs = benchMetrics
	o.Trace = benchTracer
	o.Profiles = benchProfiles
	o.FlightRecorder = benchRing
	o.SlowOpThreshold = slowOpFlag
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rcbench", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "reduced sizes")
	filter := fs.String("run", "", "only experiments whose id contains this substring")
	workers := fs.Int("workers", 0, "worker count for the parallel candidate searches (0 = GOMAXPROCS, 1 = sequential)")
	naiveJoin := fs.Bool("naivejoin", false, "ablation: evaluate with the nested-loop evaluator instead of compiled indexed plans")
	boxed := fs.Bool("boxed", false, "ablation: boxed (non-interned) relation storage instead of interned ids")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile of the sweep to this file")
	memProfile := fs.String("memprofile", "", "write a pprof heap profile to this file at exit")
	trace := fs.Bool("trace", false, "stream the decision trace of every experiment to stderr")
	httpAddr := fs.String("http", "", "serve /metrics (Prometheus), /debug/vars and /debug/pprof on this address during the sweep")
	statsOut := fs.Bool("stats", false, "print the aggregated solver counters after the sweep")
	slowlog := fs.Duration("slowlog", 0, "dump the flight recorder and histograms to stderr when a decider call exceeds this duration (0 disables)")
	timeout := fs.Duration("timeout", 0, "abort the whole sweep after this duration (experiments report the deadline error; 0 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	workersFlag = *workers
	naiveJoinFlag = *naiveJoin
	boxedFlag = *boxed
	relation.SetDefaultBoxed(boxedFlag) // gadget construction happens before Options reach a Problem
	slowOpFlag = *slowlog
	benchCtx = context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		benchCtx, cancel = context.WithTimeout(benchCtx, *timeout)
		defer cancel()
	}
	relation.SetMetrics(benchMetrics) // index counters live behind a process-global hook
	if *trace {
		// Verbose tracer teed into the flight recorder, so the slow-op
		// log still has the ring even while the text stream is on.
		benchTracer = obs.NewTracer(obs.Tee(obs.NewTextSink(os.Stderr), benchRing))
		defer func() { benchTracer = obs.NewFlightTracer(benchRing) }()
	}
	if *httpAddr != "" {
		ds, err := serveDebug(*httpAddr)
		if err != nil {
			return fmt.Errorf("http: %w", err)
		}
		defer ds.Close()
		fmt.Fprintf(os.Stderr, "rcbench: debug endpoint on http://%s/metrics, /debug/plans, /debug/vars and /debug/pprof/\n", ds.Addr())
	}
	if *statsOut {
		defer func() {
			st := benchMetrics.Snapshot()
			fmt.Fprintln(out, "solver counters:")
			names := make([]string, 0, len(st.Counters))
			for name := range st.Counters {
				names = append(names, name)
			}
			sort.Strings(names)
			for _, name := range names {
				fmt.Fprintf(out, "  %-28s %d\n", name, st.Counters[name])
			}
			for _, ph := range st.Phases {
				fmt.Fprintf(out, "  phase %-22s count=%d %0.1fms\n", ph.Name, ph.Count, ph.Ms)
			}
			for _, h := range st.Histograms {
				fmt.Fprintf(out, "  histogram %-18s count=%d\n", h.Name, h.Count)
			}
		}()
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "rcbench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "rcbench: memprofile:", err)
			}
		}()
	}

	fmt.Fprintln(out, "relcomplete — empirical reproduction of Table I (Deng, Fan, Geerts; PODS'10/TODS'16)")
	fmt.Fprintln(out, strings.Repeat("=", 96))

	for _, e := range experiments() {
		if *filter != "" && !strings.Contains(e.id, *filter) {
			continue
		}
		fmt.Fprintf(out, "\n%-18s %s\n", e.id, e.cell)
		rows, err := e.runFn(*quick)
		if err != nil {
			fmt.Fprintf(out, "  ERROR: %v\n", err)
			continue
		}
		for _, r := range rows {
			fmt.Fprintf(out, "  %-26s verdict=%-14s oracle=%-6s %12v\n",
				r.size, r.verdict, r.agree, r.elapsed.Round(time.Microsecond))
		}
	}
	fmt.Fprintln(out)
	return nil
}

// serveDebug starts the opt-in introspection endpoint: the metrics
// exposition under /metrics (Prometheus, or OpenMetrics with exemplars
// on request), the solver counters under /debug/vars (expvar), the Go
// profiler under /debug/pprof/ and the sweep-wide top-K slowest plans
// under /debug/plans. Every request is traced and logged as one JSON
// line on stderr (httpx.AccessLog), the same schema rcserved emits. It
// binds eagerly so a bad address fails the run; Close on the returned
// server drains in-flight scrapes (internal/httpx) before the process
// moves on.
func serveDebug(addr string) (*httpx.Server, error) {
	httpx.PublishSnapshot("solver", benchMetrics)
	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))
	mux := httpx.NewDebugMux(benchMetrics)
	httpx.RegisterPlans(mux, func(k int) any { return benchProfiles.Top(k) })
	return httpx.Serve(addr, httpx.AccessLog(logger, mux))
}

func timed(fn func() (string, string, error)) (row, error) {
	start := time.Now()
	verdict, agree, err := fn()
	return row{verdict: verdict, agree: agree, elapsed: time.Since(start)}, err
}

func agreeStr(got, want bool) string {
	if got == want {
		return "OK"
	}
	return "FAIL"
}

func boolStr(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

func experiments() []experiment {
	return []experiment{
		{"E-F1", "Figure 1 / Examples 1.1–2.3 (patient scenario)", runFigure1},
		{"E-T1-CONS", "consistency — Σp2 via ∀*∃*3SAT (Prop. 3.3)", runConsistency},
		{"E-T1-EXT", "extensibility — Σp2 via ∀*∃*3SAT (Prop. 3.3)", runExtensibility},
		{"E-T1-RCDPs", "RCDPs(CQ) — Πp2 (Thm. 4.1), patient family", runRCDPStrong},
		{"E-T1-RCDPw", "RCDPw(CQ) — Πp3 via ∃*∀*∃*3SAT (Thm. 5.1)", runRCDPWeak},
		{"E-T1-RCDPv", "RCDPv(CQ) — Σp3 via ∃*∀*∃*3SAT (Thm. 6.1)", runRCDPViable},
		{"E-T1-RCDPwFP", "RCDPw(FP) — coNEXPTIME via SUCCINCT-TAUT (Thm. 5.1(2))", runRCDPWeakFP},
		{"E-T1-MINPs", "MINPs(CQ) — Πp3 c-instances / Dp2 ground (Thm. 4.8)", runMINPStrong},
		{"E-T1-MINPw-CQ", "MINPw(CQ) — coDP via SAT-UNSAT (Thm. 5.6(4))", runMINPWeakCQ},
		{"E-T1-MINPw-UCQ", "MINPw(UCQ) — Πp4 generic subset algorithm (Thm. 5.6(3))", runMINPWeakUCQ},
		{"E-T1-MINPv", "MINPv(CQ) — Σp3 via ∃*∀*∃*3SAT (Cor. 6.3)", runMINPViable},
		{"E-T1-RCQPs", "RCQPs — NEXPTIME; IND fast path + bounded search (Thm. 4.5)", runRCQPStrong},
		{"E-T1-RCQPw", "RCQPw — O(1) + constructive witness (Thm. 5.4)", runRCQPWeak},
		{"E-T1-UNDEC", "undecidable cells refused (Table I)", runUndecidable},
		{"E-S7-RCDP", "Cor. 7.1 — PTIME data complexity for RCDP", runTractableRCDP},
		{"E-S7-RCQP", "Cor. 7.2 — PTIME RCQP under IND CCs", runTractableRCQP},
		{"E-S7-MINP", "Cor. 7.3 — PTIME data complexity for MINP", runTractableMINP},
		{"E-P31", "Prop. 3.1 — FD(+IND) integrity constraints gadget", runProp31},
	}
}

func runFigure1(quick bool) ([]row, error) {
	var rows []row
	s := paperex.Reduced()
	cases := []struct {
		label string
		fn    func() (bool, error)
		want  bool
	}{
		{"Q1 strongly complete", func() (bool, error) {
			p, _ := s.Problem(s.Q1, benchOpts())
			return p.RCDPCtx(benchCtx, s.T, core.Strong)
		}, true},
		{"Q2 incomplete", func() (bool, error) {
			p, _ := s.Problem(s.Q2, benchOpts())
			return p.RCDPCtx(benchCtx, s.T, core.Strong)
		}, false},
		{"Q4 weakly complete", func() (bool, error) {
			p, _ := s.Problem(s.Q4, benchOpts())
			withVar, err := s.WithRow(ctable.Row{
				Terms: []query.Term{query.C("915-15-336"), query.V("x"), query.C("EDI"), query.V("z")},
			})
			if err != nil {
				return false, err
			}
			return p.RCDPCtx(benchCtx, withVar, core.Weak)
		}, true},
		{"Q4 not strongly complete", func() (bool, error) {
			p, _ := s.Problem(s.Q4, benchOpts())
			withVar, err := s.WithRow(ctable.Row{
				Terms: []query.Term{query.C("915-15-336"), query.V("x"), query.C("EDI"), query.V("z")},
			})
			if err != nil {
				return false, err
			}
			return p.RCDPCtx(benchCtx, withVar, core.Strong)
		}, false},
	}
	for _, c := range cases {
		c := c
		r, err := timed(func() (string, string, error) {
			got, err := c.fn()
			if err != nil {
				return "", "", err
			}
			return boolStr(got), agreeStr(got, c.want), nil
		})
		if err != nil {
			return nil, err
		}
		r.size = c.label
		rows = append(rows, r)
	}
	return rows, nil
}

func consistencySizes(quick bool) []int {
	if quick {
		return []int{1, 2}
	}
	return []int{1, 2, 3, 4}
}

func runConsistency(quick bool) ([]row, error) {
	var rows []row
	for _, n := range consistencySizes(quick) {
		q := workload.ForallExistsFamily(n, 2, 4, int64(n))
		g, err := reduction.NewConsistencyGadget(q)
		if err != nil {
			return nil, err
		}
		applyBenchOpts(&g.Problem.Options)
		want := !q.Eval()
		r, err := timed(func() (string, string, error) {
			got, err := g.ConsistencyHoldsCtx(benchCtx)
			if err != nil {
				return "", "", err
			}
			return boolStr(got), agreeStr(got, want), nil
		})
		if err != nil {
			return nil, err
		}
		r.size = fmt.Sprintf("forall=%d exists=2 cls=4", n)
		rows = append(rows, r)
	}
	return rows, nil
}

func runExtensibility(quick bool) ([]row, error) {
	var rows []row
	for _, n := range consistencySizes(quick) {
		q := workload.ForallExistsFamily(n, 2, 4, int64(n)+50)
		g, err := reduction.NewConsistencyGadget(q)
		if err != nil {
			return nil, err
		}
		applyBenchOpts(&g.Problem.Options)
		want := !q.Eval()
		r, err := timed(func() (string, string, error) {
			got, err := g.ExtensibilityHoldsCtx(benchCtx)
			if err != nil {
				return "", "", err
			}
			return boolStr(got), agreeStr(got, want), nil
		})
		if err != nil {
			return nil, err
		}
		r.size = fmt.Sprintf("forall=%d exists=2 cls=4", n)
		rows = append(rows, r)
	}
	return rows, nil
}

func runRCDPStrong(quick bool) ([]row, error) {
	var rows []row
	s := paperex.Reduced()
	sizes := []int{1, 3, 5}
	if quick {
		sizes = []int{1, 3}
	}
	for _, extra := range sizes {
		ci := s.T.Clone()
		for i := 0; i < extra-1; i++ {
			ci.MustAddRow("MVisit", ctable.Row{Terms: []query.Term{
				query.C(relation.Value(fmt.Sprintf("999-00-%03d", i))),
				query.C(relation.Value(fmt.Sprintf("P%d", i))),
				query.C("LON"), query.C("2000"),
			}})
		}
		p, err := s.Problem(s.Q1, benchOpts())
		if err != nil {
			return nil, err
		}
		r, err := timed(func() (string, string, error) {
			got, err := p.RCDPCtx(benchCtx, ci, core.Strong)
			if err != nil {
				return "", "", err
			}
			return boolStr(got), agreeStr(got, true), nil
		})
		if err != nil {
			return nil, err
		}
		r.size = fmt.Sprintf("rows=%d", extra)
		rows = append(rows, r)
	}
	return rows, nil
}

func efeSizes(quick bool) []int {
	if quick {
		return []int{1, 2}
	}
	return []int{1, 2, 3}
}

func runRCDPWeak(quick bool) ([]row, error) {
	var rows []row
	for _, nY := range efeSizes(quick) {
		q := workload.ExistsForallExistsFamily(1, nY, 1, 3, int64(nY))
		g, err := reduction.NewWeakRCDPGadget(q)
		if err != nil {
			return nil, err
		}
		applyBenchOpts(&g.Problem.Options)
		want := !q.Eval()
		r, err := timed(func() (string, string, error) {
			got, err := g.WeaklyCompleteCtx(benchCtx)
			if err != nil {
				return "", "", err
			}
			return boolStr(got), agreeStr(got, want), nil
		})
		if err != nil {
			return nil, err
		}
		r.size = fmt.Sprintf("forallY=%d", nY)
		rows = append(rows, r)
	}
	return rows, nil
}

func runRCDPViable(quick bool) ([]row, error) {
	var rows []row
	for _, nX := range efeSizes(quick) {
		q := workload.ExistsForallExistsFamily(nX, 1, 1, 3, int64(nX))
		g, err := reduction.NewExistsForallExistsGadget(q, false)
		if err != nil {
			return nil, err
		}
		applyBenchOpts(&g.Problem.Options)
		want := q.Eval()
		r, err := timed(func() (string, string, error) {
			got, err := g.RCDPViableHoldsCtx(benchCtx)
			if err != nil {
				return "", "", err
			}
			return boolStr(got), agreeStr(got, want), nil
		})
		if err != nil {
			return nil, err
		}
		r.size = fmt.Sprintf("existsX=%d", nX)
		rows = append(rows, r)
	}
	return rows, nil
}

func runRCDPWeakFP(quick bool) ([]row, error) {
	var rows []row
	sizes := []int{2, 4, 6}
	if quick {
		sizes = []int{2, 4}
	}
	for _, inputs := range sizes {
		circ := workload.CircuitFamily(inputs, 16, inputs%4 == 2, int64(inputs))
		want, err := circ.Tautology()
		if err != nil {
			return nil, err
		}
		g, err := reduction.NewCircuitFPGadget(circ)
		if err != nil {
			return nil, err
		}
		applyBenchOpts(&g.Problem.Options)
		r, err := timed(func() (string, string, error) {
			got, err := g.WeaklyCompleteCtx(benchCtx)
			if err != nil {
				return "", "", err
			}
			return boolStr(got), agreeStr(got, want), nil
		})
		if err != nil {
			return nil, err
		}
		r.size = fmt.Sprintf("inputs=%d", inputs)
		rows = append(rows, r)
	}
	return rows, nil
}

func runMINPStrong(quick bool) ([]row, error) {
	var rows []row
	for _, nX := range efeSizes(quick) {
		q := workload.ExistsForallExistsFamily(nX, 1, 1, 3, int64(nX))
		g, err := reduction.NewExistsForallExistsGadget(q, true)
		if err != nil {
			return nil, err
		}
		applyBenchOpts(&g.Problem.Options)
		want := !q.Eval()
		r, err := timed(func() (string, string, error) {
			got, err := g.MINPStrongHoldsCtx(benchCtx)
			if err != nil {
				return "", "", err
			}
			return boolStr(got), agreeStr(got, want), nil
		})
		if err != nil {
			return nil, err
		}
		r.size = fmt.Sprintf("cinstance existsX=%d", nX)
		rows = append(rows, r)

		// Ground counterpart (the Dp2 cell).
		db, err := g.Problem.AnyModel(g.T)
		if err != nil || db == nil {
			return nil, fmt.Errorf("no model: %v", err)
		}
		r2, err := timed(func() (string, string, error) {
			got, err := g.Problem.GroundMinimal(db)
			if err != nil {
				return "", "", err
			}
			return boolStr(got), "-", nil
		})
		if err != nil {
			return nil, err
		}
		r2.size = fmt.Sprintf("ground    existsX=%d", nX)
		rows = append(rows, r2)
	}
	return rows, nil
}

func runMINPWeakCQ(quick bool) ([]row, error) {
	var rows []row
	sizes := []int{2, 3, 4}
	if quick {
		sizes = []int{2, 3}
	}
	for _, vars := range sizes {
		inst := workload.SATUNSATFamily(vars, vars+1, int64(vars))
		g, err := reduction.NewWeakMINPGadget(inst)
		if err != nil {
			return nil, err
		}
		applyBenchOpts(&g.Problem.Options)
		want := !inst.Eval()
		r, err := timed(func() (string, string, error) {
			got, err := g.MinimalWeaklyCompleteCtx(benchCtx)
			if err != nil {
				return "", "", err
			}
			return boolStr(got), agreeStr(got, want), nil
		})
		if err != nil {
			return nil, err
		}
		r.size = fmt.Sprintf("vars=%d", vars)
		rows = append(rows, r)
	}
	return rows, nil
}

func runMINPWeakUCQ(quick bool) ([]row, error) {
	var rows []row
	s := workload.NewBoundedScenario(3, benchOpts())
	q := query.MustParseQuery("Q(i) := Order(i, '1') | Order(i, '2')")
	p := core.MustProblem(s.Schema, core.CalcQuery(q), s.Dm, s.CCs, benchOpts())
	sizes := []int{1, 2, 3}
	if quick {
		sizes = []int{1, 2}
	}
	for _, n := range sizes {
		ci := s.Instance(n, 0, int64(n))
		r, err := timed(func() (string, string, error) {
			got, err := p.MINPCtx(benchCtx, ci, core.Weak)
			if err != nil {
				return "", "", err
			}
			return boolStr(got), "-", nil
		})
		if err != nil {
			return nil, err
		}
		r.size = fmt.Sprintf("rows=%d (2^rows subsets)", n)
		rows = append(rows, r)
	}
	return rows, nil
}

func runMINPViable(quick bool) ([]row, error) {
	var rows []row
	for _, nX := range efeSizes(quick) {
		q := workload.ExistsForallExistsFamily(nX, 1, 1, 3, int64(nX)+11)
		g, err := reduction.NewExistsForallExistsGadget(q, false)
		if err != nil {
			return nil, err
		}
		applyBenchOpts(&g.Problem.Options)
		want := q.Eval()
		r, err := timed(func() (string, string, error) {
			got, err := g.MINPViableHoldsCtx(benchCtx)
			if err != nil {
				return "", "", err
			}
			return boolStr(got), agreeStr(got, want), nil
		})
		if err != nil {
			return nil, err
		}
		r.size = fmt.Sprintf("existsX=%d", nX)
		rows = append(rows, r)
	}
	return rows, nil
}

func runRCQPStrong(quick bool) ([]row, error) {
	var rows []row
	s := paperex.Reduced()
	// IND fast path.
	left := query.MustParseQuery("q(n, na) := MVisit(n, na, c, y)")
	right := query.MustParseQuery("p(n, na) := Patientm(n, na, y)")
	ccSet, err := indSet("nhs", left, right)
	if err != nil {
		return nil, err
	}
	pInd := core.MustProblem(s.Data, core.CalcQuery(s.Q1), s.Dm, ccSet, benchOpts())
	r, err := timed(func() (string, string, error) {
		got, err := pInd.RCQPCtx(benchCtx, core.Strong)
		if err != nil {
			return "", "", err
		}
		return boolStr(got), agreeStr(got, true), nil
	})
	if err != nil {
		return nil, err
	}
	r.size = "IND fast path (bounded head)"
	rows = append(rows, r)

	// Bounded witness search with the Figure 1 CC set.
	pSearch, err := s.Problem(s.Q1, core.Options{RCQPSizeBound: 1, Parallelism: workersFlag, NaiveJoin: naiveJoinFlag})
	if err != nil {
		return nil, err
	}
	r2, err := timed(func() (string, string, error) {
		got, err := pSearch.RCQPCtx(benchCtx, core.Strong)
		if err != nil {
			return "", "", err
		}
		return boolStr(got), "-", nil
	})
	if err != nil {
		return nil, err
	}
	r2.size = "bounded search (size ≤ 1)"
	rows = append(rows, r2)
	return rows, nil
}

func runRCQPWeak(quick bool) ([]row, error) {
	var rows []row
	sizes := []int{2, 4, 8}
	if quick {
		sizes = []int{2, 4}
	}
	for _, catalogue := range sizes {
		s := workload.NewBoundedScenario(catalogue, benchOpts())
		r, err := timed(func() (string, string, error) {
			witness, err := s.Problem.ConstructWeaklyCompleteCtx(benchCtx)
			if err != nil {
				return "", "", err
			}
			ok, err := s.Problem.RCDPCtx(benchCtx, ctable.FromDatabase(witness), core.Weak)
			if err != nil {
				return "", "", err
			}
			return fmt.Sprintf("witness size=%d", witness.Size()), agreeStr(ok, true), nil
		})
		if err != nil {
			return nil, err
		}
		r.size = fmt.Sprintf("catalogue=%d", catalogue)
		rows = append(rows, r)
	}
	return rows, nil
}

func runUndecidable(quick bool) ([]row, error) {
	schema := relation.MustDBSchema(relation.MustSchema("R", relation.Attr("A", nil)))
	fo := core.MustProblem(schema,
		core.CalcQuery(query.MustParseQuery("Q(x) := ! R(x)")), nil, nil, benchOpts())
	fp := core.MustProblem(schema,
		core.FPQuery(query.MustParseProgram("p", schema, "r(x) :- R(x). output r.")), nil, nil, benchOpts())
	ci := ctable.NewCInstance(schema)

	var rows []row
	type c struct {
		label string
		fn    func() error
	}
	cases := []c{
		{"RCDPs(FO)", func() error { _, err := fo.RCDP(ci, core.Strong); return err }},
		{"RCDPw(FO)", func() error { _, err := fo.RCDP(ci, core.Weak); return err }},
		{"RCDPs(FP)", func() error { _, err := fp.RCDPCtx(benchCtx, ci, core.Strong); return err }},
		{"RCQPs(FP)", func() error { _, err := fp.RCQPCtx(benchCtx, core.Strong); return err }},
		{"MINPv(FO)", func() error { _, err := fo.MINP(ci, core.Viable); return err }},
		{"RCQPw(FO) c-inst (open)", func() error { _, err := fo.RCQP(core.Weak); return err }},
	}
	for _, cse := range cases {
		cse := cse
		r, err := timed(func() (string, string, error) {
			err := cse.fn()
			if err == nil {
				return "", "", fmt.Errorf("%s: expected refusal", cse.label)
			}
			return "refused", "OK", nil
		})
		if err != nil {
			return nil, err
		}
		r.size = cse.label
		rows = append(rows, r)
	}
	return rows, nil
}

func tractableSizes(quick bool) []int {
	if quick {
		return []int{4, 8}
	}
	return []int{4, 8, 16, 32, 64}
}

func runTractableRCDP(quick bool) ([]row, error) {
	var rows []row
	s := workload.NewBoundedScenario(4, benchOpts())
	for _, n := range tractableSizes(quick) {
		ci := s.Instance(n, 1, int64(n))
		r, err := timed(func() (string, string, error) {
			got, err := tractable.RCDP(s.Problem, ci, core.Strong, 2)
			if err != nil {
				return "", "", err
			}
			return boolStr(got), "-", nil
		})
		if err != nil {
			return nil, err
		}
		r.size = fmt.Sprintf("rows=%d vars=1", n)
		rows = append(rows, r)
	}
	return rows, nil
}

func runTractableRCQP(quick bool) ([]row, error) {
	s := paperex.Reduced()
	left := query.MustParseQuery("q(n, na) := MVisit(n, na, c, y)")
	right := query.MustParseQuery("p(n, na) := Patientm(n, na, y)")
	ccSet, err := indSet("nhs", left, right)
	if err != nil {
		return nil, err
	}
	p := core.MustProblem(s.Data, core.CalcQuery(s.Q1), s.Dm, ccSet, benchOpts())
	r, err := timed(func() (string, string, error) {
		got, err := tractable.RCQP(p, core.Strong)
		if err != nil {
			return "", "", err
		}
		return boolStr(got), agreeStr(got, true), nil
	})
	if err != nil {
		return nil, err
	}
	r.size = "IND CCs, fixed query"
	return []row{r}, nil
}

func runTractableMINP(quick bool) ([]row, error) {
	var rows []row
	s := workload.NewBoundedScenario(3, benchOpts())
	sizes := []int{2, 4, 8}
	if quick {
		sizes = []int{2, 4}
	}
	for _, n := range sizes {
		ci := s.Instance(n, 1, int64(n))
		r, err := timed(func() (string, string, error) {
			got, err := tractable.MINP(s.Problem, ci, core.Strong, 2)
			if err != nil {
				return "", "", err
			}
			return boolStr(got), "-", nil
		})
		if err != nil {
			return nil, err
		}
		r.size = fmt.Sprintf("rows=%d vars=1", n)
		rows = append(rows, r)
	}
	return rows, nil
}

func runProp31(quick bool) ([]row, error) {
	sch := relation.MustSchema("R",
		relation.Attr("A", nil), relation.Attr("B", nil),
		relation.Attr("C", nil), relation.Attr("D", nil))
	var rows []row
	cases := []struct {
		label   string
		theta   []fd
		phi     fd
		implied bool
	}{
		{"A→B,B→C ⊨ A→C", []fd{{"A", "B"}, {"B", "C"}}, fd{"A", "C"}, true},
		{"A→B ⊭ A→C", []fd{{"A", "B"}}, fd{"A", "C"}, false},
	}
	for _, cse := range cases {
		theta := make([]ccFD, len(cse.theta))
		for i, f := range cse.theta {
			theta[i] = ccFD{Rel: "R", LHS: []string{f.l}, RHS: []string{f.r}}
		}
		g, err := reduction.NewProp31Gadget(sch, theta, nil, ccFD{Rel: "R", LHS: []string{cse.phi.l}, RHS: []string{cse.phi.r}})
		if err != nil {
			return nil, err
		}
		cse := cse
		r, err := timed(func() (string, string, error) {
			got, err := g.CompleteUpTo(2, []relation.Value{"0", "1"})
			if err != nil {
				return "", "", err
			}
			return boolStr(got), agreeStr(got, cse.implied), nil
		})
		if err != nil {
			return nil, err
		}
		r.size = cse.label
		rows = append(rows, r)
	}
	return rows, nil
}

type fd struct{ l, r string }

// ccFD aliases the cc package's FD type for compact literals above.
type ccFD = cc.FD

// indSet wraps a projection CC into a singleton set.
func indSet(name string, left, right *query.Query) (*cc.Set, error) {
	c, err := cc.New(name, left, right)
	if err != nil {
		return nil, err
	}
	return cc.NewSet(c), nil
}
