package main

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"relcomplete/internal/obs"
)

// The experiment driver end to end on the fastest experiments: every
// executed row must carry an OK (or not-applicable) oracle column.
func TestRunQuickFiltered(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-quick", "-run", "E-T1-CONS"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "E-T1-CONS") {
		t.Fatalf("missing experiment header:\n%s", s)
	}
	if strings.Contains(s, "FAIL") || strings.Contains(s, "ERROR") {
		t.Fatalf("experiment failed:\n%s", s)
	}
	if !strings.Contains(s, "oracle=OK") {
		t.Fatalf("no oracle-checked rows:\n%s", s)
	}
	// The filter must exclude everything else.
	if strings.Contains(s, "E-T1-MINP") {
		t.Fatalf("filter leaked other experiments:\n%s", s)
	}
}

func TestRunUndecidableExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-run", "E-T1-UNDEC"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"RCDPs(FO)", "RCQPs(FP)", "refused"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in:\n%s", want, s)
		}
	}
	if strings.Contains(s, "FAIL") {
		t.Fatalf("refusal check failed:\n%s", s)
	}
}

func TestRunProp31Experiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-run", "E-P31"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "oracle=OK") {
		t.Fatalf("Prop 3.1 rows missing:\n%s", out.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-nope"}, &out); err == nil {
		t.Fatal("unknown flag should fail")
	}
}

func TestHelpers(t *testing.T) {
	if boolStr(true) != "yes" || boolStr(false) != "no" {
		t.Fatal("boolStr wrong")
	}
	if agreeStr(true, true) != "OK" || agreeStr(true, false) != "FAIL" {
		t.Fatal("agreeStr wrong")
	}
}

// TestServeDebug hits the opt-in introspection endpoint: /debug/vars
// must expose the solver counters as JSON, /metrics must pass the
// in-repo Prometheus grammar check, /debug/pprof/ must answer, and
// Close must shut the server down for good.
func TestServeDebug(t *testing.T) {
	ds, err := serveDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ds.Addr().String()
	benchMetrics.Inc(obs.ModelsChecked)
	resp, err := http.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vars struct {
		Solver struct {
			Counters map[string]int64 `json:"counters"`
		} `json:"solver"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	if vars.Solver.Counters["models_checked"] == 0 {
		t.Fatalf("solver counters missing from expvar: %+v", vars)
	}

	respM, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if got := respM.Header.Get("Content-Type"); got != obs.ContentTypePrometheus {
		t.Fatalf("Content-Type = %q", got)
	}
	body, err := io.ReadAll(respM.Body)
	respM.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidatePrometheusText(body); err != nil {
		t.Fatalf("/metrics failed the exposition grammar: %v", err)
	}
	if !strings.Contains(string(body), "relcomplete_models_checked_total") {
		t.Fatalf("/metrics missing counter family:\n%s", body)
	}

	resp2, err := http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status = %d", resp2.StatusCode)
	}

	if err := ds.Close(); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Fatal("server still answering after Close")
	}
}

// TestServeDebugBindFailure covers the error path: a second bind on an
// already-taken address must fail the run rather than silently serve
// nothing.
func TestServeDebugBindFailure(t *testing.T) {
	ds, err := serveDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	if _, err := serveDebug(ds.Addr().String()); err == nil {
		t.Fatal("bind on a taken address should fail")
	}
	var out strings.Builder
	if err := run([]string{"-quick", "-run", "E-F1", "-http", ds.Addr().String()}, &out); err == nil {
		t.Fatal("run with an unbindable -http address should fail")
	}
}

// TestRunTraceAndStats drives a quick filtered sweep with tracing and
// the counter dump enabled.
func TestRunTraceAndStats(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-quick", "-run", "E-F1", "-stats"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "solver counters:") || !strings.Contains(s, "models_checked") {
		t.Fatalf("counter dump missing:\n%s", s)
	}
	if !strings.Contains(s, "phase rcdp_strong") {
		t.Fatalf("phase timings missing:\n%s", s)
	}
}

func TestRunTimeoutExpired(t *testing.T) {
	// A 1ns sweep deadline has fired before the first decider call; the
	// experiment reports the deadline error and the driver keeps going.
	var out strings.Builder
	if err := run([]string{"-quick", "-run", "E-T1-CONS", "-timeout", "1ns"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "ERROR") || !strings.Contains(s, "deadline") {
		t.Fatalf("want a deadline error row:\n%s", s)
	}
}
