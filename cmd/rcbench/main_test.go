package main

import (
	"strings"
	"testing"
)

// The experiment driver end to end on the fastest experiments: every
// executed row must carry an OK (or not-applicable) oracle column.
func TestRunQuickFiltered(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-quick", "-run", "E-T1-CONS"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "E-T1-CONS") {
		t.Fatalf("missing experiment header:\n%s", s)
	}
	if strings.Contains(s, "FAIL") || strings.Contains(s, "ERROR") {
		t.Fatalf("experiment failed:\n%s", s)
	}
	if !strings.Contains(s, "oracle=OK") {
		t.Fatalf("no oracle-checked rows:\n%s", s)
	}
	// The filter must exclude everything else.
	if strings.Contains(s, "E-T1-MINP") {
		t.Fatalf("filter leaked other experiments:\n%s", s)
	}
}

func TestRunUndecidableExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-run", "E-T1-UNDEC"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"RCDPs(FO)", "RCQPs(FP)", "refused"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in:\n%s", want, s)
		}
	}
	if strings.Contains(s, "FAIL") {
		t.Fatalf("refusal check failed:\n%s", s)
	}
}

func TestRunProp31Experiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-run", "E-P31"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "oracle=OK") {
		t.Fatalf("Prop 3.1 rows missing:\n%s", out.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-nope"}, &out); err == nil {
		t.Fatal("unknown flag should fail")
	}
}

func TestHelpers(t *testing.T) {
	if boolStr(true) != "yes" || boolStr(false) != "no" {
		t.Fatal("boolStr wrong")
	}
	if agreeStr(true, true) != "OK" || agreeStr(true, false) != "FAIL" {
		t.Fatal("agreeStr wrong")
	}
}
