// Command rcheck decides relative information completeness problems
// described by a JSON document (see internal/probjson for the format).
//
// Usage:
//
//	rcheck -problem <name> [-model strong|weak|viable] [-explain] file.json
//	rcheck -problem consistency file.json
//	rcheck -problem rcdp -json file.json        # machine-readable verdict + stats
//	rcheck -problem rcdp -trace file.json       # decision trace of the search tree
//	cat file.json | rcheck -problem rcdp -model weak -
//
// Problems: consistency, extensibility, rcdp, rcqp, minp, certain
// (certain answers), models (list ModAdom members).
//
// Observability: every run keeps an always-on flight recorder (the
// last 256 decision events) and latency/size histograms.
// -metrics-out <file> dumps the final counters and histograms in
// Prometheus text exposition format ("-" for stdout); -slowlog <dur>
// dumps the flight recorder and histogram snapshot to stderr whenever
// one decider call exceeds the duration; -trace-out <file> runs the
// decision under a root span and writes the finished span tree as
// JSONL, one span per line, through the async export pipeline.
//
// Deadlines: -timeout <dur> bounds the whole decision with a context
// deadline. An expired deadline exits 3 and, with -json, reports the
// interrupted operation, elapsed time and progress snapshot in the
// "deadline" field — the verdict is unknown, not "no".
//
// Exit codes: 0 success, 3 when -timeout expired, 2 when a search
// budget was exhausted (ErrBudget / ErrInconclusive — the verdict is
// unknown, not "no"), 1 for every other error.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"relcomplete/internal/adom"
	"relcomplete/internal/core"
	"relcomplete/internal/eval"
	"relcomplete/internal/obs"
	"relcomplete/internal/probjson"
	"relcomplete/internal/relation"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "rcheck:", err)
		os.Exit(exitCode(err))
	}
}

// exitCode distinguishes "the deadline expired" (3) and "the search
// ran out of budget" (2) — both mean the verdict is unknown, retry
// with more time or larger caps — from genuine failures (1). adom and
// eval carry their own budget sentinels. The deadline check comes
// first: a cancelled search may trip a budget on the way out, and the
// deadline is the root cause.
func exitCode(err error) int {
	if errors.Is(err, core.ErrDeadline) {
		return 3
	}
	if errors.Is(err, core.ErrBudget) || errors.Is(err, core.ErrInconclusive) ||
		errors.Is(err, adom.ErrBudget) || errors.Is(err, eval.ErrBudget) {
		return 2
	}
	return 1
}

// result is the single JSON object -json prints: the verdict (absent
// on error), any problem-specific payload, and the solver stats.
type result struct {
	Problem        string        `json:"problem"`
	Model          string        `json:"model,omitempty"`
	Verdict        *bool         `json:"verdict,omitempty"`
	Counterexample string        `json:"counterexample,omitempty"`
	CertainAnswers []string      `json:"certain_answers,omitempty"`
	Models         []string      `json:"models,omitempty"`
	Error          string        `json:"error,omitempty"`
	Budget         *capInfo      `json:"budget,omitempty"`
	Deadline       *deadlineInfo `json:"deadline,omitempty"`
	Stats          obs.Stats     `json:"stats"`
}

// capInfo mirrors core.BudgetError for the JSON output.
type capInfo struct {
	Op       string `json:"op"`
	Cap      string `json:"cap"`
	Limit    int64  `json:"limit"`
	Consumed int64  `json:"consumed"`
}

// deadlineInfo mirrors core.DeadlineError for the JSON output.
type deadlineInfo struct {
	Op                   string `json:"op"`
	Elapsed              string `json:"elapsed"`
	Partial              string `json:"partial,omitempty"`
	ModelsChecked        int64  `json:"models_checked"`
	ModelsAdmitted       int64  `json:"models_admitted"`
	ModelsPruned         int64  `json:"models_pruned"`
	ValuationsEnumerated int64  `json:"valuations_enumerated"`
	ExtensionsTested     int64  `json:"extensions_tested"`
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("rcheck", flag.ContinueOnError)
	problem := fs.String("problem", "rcdp", "consistency | extensibility | rcdp | rcqp | minp | certain | models")
	model := fs.String("model", "strong", "completeness model: strong | weak | viable")
	explain := fs.Bool("explain", false, "print a counterexample when RCDP fails")
	jsonOut := fs.Bool("json", false, "print one JSON object (verdict + solver stats) instead of text")
	trace := fs.Bool("trace", false, "stream the decision trace (candidate models, CC violations, counterexamples)")
	maxModels := fs.Int("max-models", 10, "cap for -problem models")
	workers := fs.Int("workers", 0, "worker count for the parallel searches (0 = keep the document's options.parallelism, or GOMAXPROCS; -trace defaults to 1)")
	metricsOut := fs.String("metrics-out", "", "write the final metrics in Prometheus text format to this file (- for stdout)")
	traceOut := fs.String("trace-out", "", "write the decision's finished span tree to this file as JSONL (one span per line)")
	slowlog := fs.Duration("slowlog", 0, "dump the flight recorder and histograms to stderr when a decider call exceeds this duration (0 disables)")
	timeout := fs.Duration("timeout", 0, "abort the decision after this duration (exit 3; 0 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("expected exactly one input file (or - for stdin)")
	}
	var data []byte
	var err error
	if fs.Arg(0) == "-" {
		data, err = io.ReadAll(stdin)
	} else {
		data, err = os.ReadFile(fs.Arg(0))
	}
	if err != nil {
		return err
	}
	p, ci, err := probjson.Decode(data)
	if err != nil {
		return err
	}
	if *workers != 0 {
		p.Options.Parallelism = *workers
	}
	m, err := parseModel(*model)
	if err != nil {
		return err
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// -trace-out runs the whole decision under a root span and writes
	// the finished tree through the span export pipeline — the same
	// JSONL shape rcserved -trace-export produces, so one jq recipe
	// reads both.
	if *traceOut != "" {
		sink, err := obs.OpenJSONLFile(*traceOut)
		if err != nil {
			return fmt.Errorf("trace-out: %w", err)
		}
		exporter := obs.NewSpanExporter(sink, obs.ExporterConfig{})
		rec := obs.NewSpanRecorder(0)
		root := rec.Root("rcheck "+*problem, "")
		ctx = obs.ContextWithSpan(ctx, root)
		defer func() {
			root.End()
			exporter.Enqueue(rec.Spans())
			if cerr := exporter.Close(); cerr != nil {
				fmt.Fprintln(stderr, "rcheck: trace-out:", cerr)
			}
		}()
	}

	metrics := obs.NewMetrics()
	p.Options.Obs = metrics
	relation.SetMetrics(metrics) // index counters live behind a process-global hook

	// The flight recorder is always on: a bounded ring of the most
	// recent decision events, retained even without -trace, dumped by
	// the slow-op log. -trace adds the verbose text stream on top.
	ring := obs.NewRingSink(obs.DefaultRingSize)
	p.Options.FlightRecorder = ring
	if *trace {
		// Verbose tracer: full diagnosis, teed into the ring.
		p.Options.Trace = obs.NewTracer(obs.Tee(obs.NewTextSink(stdout), ring))
		if *workers == 0 && p.Options.Parallelism == 0 {
			// A sequential search keeps the trace's tree shape intact;
			// -workers overrides for tracing parallel schedules.
			p.Options.Parallelism = 1
		}
	} else {
		p.Options.Trace = obs.NewFlightTracer(ring)
	}
	if *slowlog > 0 {
		p.Options.SlowOpThreshold = *slowlog
		p.Options.SlowOpSink = stderr
	}
	if *metricsOut != "" {
		// Deferred so a budget error still leaves a scrape-able dump.
		defer func() {
			if werr := writeMetrics(*metricsOut, metrics, stdout); werr != nil {
				fmt.Fprintln(stderr, "rcheck: metrics-out:", werr)
			}
		}()
	}

	res := result{Problem: *problem, Model: *model}
	report := func(question string, answer bool) {
		res.Verdict = &answer
		if *jsonOut {
			return
		}
		verdict := "NO"
		if answer {
			verdict = "YES"
		}
		fmt.Fprintf(stdout, "%s: %s\n", question, verdict)
	}

	emit := func(runErr error) error {
		if runErr != nil {
			runErr = describe(runErr)
		}
		if !*jsonOut {
			return runErr
		}
		if runErr != nil {
			res.Error = runErr.Error()
			var be *core.BudgetError
			if errors.As(runErr, &be) {
				res.Budget = &capInfo{Op: be.Op, Cap: be.Cap, Limit: be.Limit, Consumed: be.Consumed}
			}
			var de *core.DeadlineError
			if errors.As(runErr, &de) {
				res.Deadline = &deadlineInfo{
					Op:                   de.Op,
					Elapsed:              de.Elapsed.String(),
					Partial:              de.Partial,
					ModelsChecked:        de.Progress.ModelsChecked,
					ModelsAdmitted:       de.Progress.ModelsAdmitted,
					ModelsPruned:         de.Progress.ModelsPruned,
					ValuationsEnumerated: de.Progress.ValuationsEnumerated,
					ExtensionsTested:     de.Progress.ExtensionsTested,
				}
			}
		}
		res.Stats = metrics.Snapshot()
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			return err
		}
		return runErr
	}

	switch *problem {
	case "consistency":
		res.Model = ""
		ok, err := p.ConsistentCtx(ctx, ci)
		if err != nil {
			return emit(err)
		}
		report("Mod(T, Dm, V) non-empty", ok)
	case "extensibility":
		res.Model = ""
		db, err := p.AnyModelCtx(ctx, ci)
		if err != nil {
			return emit(err)
		}
		if db == nil {
			return emit(core.ErrInconsistent)
		}
		ok, err := p.ExtensibleCtx(ctx, db)
		if err != nil {
			return emit(err)
		}
		report("Ext(I, Dm, V) non-empty (on one model of T)", ok)
	case "rcdp":
		ok, cex, err := p.RCDPExplainCtx(ctx, ci, m)
		if err != nil {
			return emit(err)
		}
		report(fmt.Sprintf("T ∈ RCQ%s(Q, Dm, V)", modelSuffix(m)), ok)
		if !ok && cex != nil {
			res.Counterexample = cex.String()
			if *explain && !*jsonOut {
				fmt.Fprintf(stdout, "counterexample: %s\n", cex)
			}
		}
	case "rcqp":
		ok, err := p.RCQPCtx(ctx, m)
		if err != nil {
			return emit(err)
		}
		report(fmt.Sprintf("RCQ%s(Q, Dm, V) non-empty", modelSuffix(m)), ok)
	case "minp":
		ok, err := p.MINPCtx(ctx, ci, m)
		if err != nil {
			return emit(err)
		}
		report(fmt.Sprintf("T minimal in RCQ%s(Q, Dm, V)", modelSuffix(m)), ok)
	case "certain":
		res.Model = ""
		ans, err := p.CertainAnswersCtx(ctx, ci)
		if err != nil {
			return emit(err)
		}
		res.CertainAnswers = []string{}
		for _, t := range ans {
			res.CertainAnswers = append(res.CertainAnswers, t.String())
		}
		if !*jsonOut {
			fmt.Fprintf(stdout, "certain answers (%d):\n", len(ans))
			for _, t := range ans {
				fmt.Fprintf(stdout, "  %s\n", t)
			}
		}
	case "models":
		res.Model = ""
		models, err := p.ModelsCtx(ctx, ci, *maxModels)
		if err != nil {
			return emit(err)
		}
		res.Models = []string{}
		for _, db := range models {
			res.Models = append(res.Models, db.String())
		}
		if !*jsonOut {
			fmt.Fprintf(stdout, "models (showing up to %d):\n", *maxModels)
			for _, db := range models {
				fmt.Fprintf(stdout, "  %s\n", db)
			}
		}
	default:
		return fmt.Errorf("unknown problem %q", *problem)
	}
	return emit(nil)
}

// writeMetrics renders m's Prometheus text exposition to path
// ("-" meaning stdout).
func writeMetrics(path string, m *obs.Metrics, stdout io.Writer) error {
	if path == "-" {
		return m.WritePrometheus(stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.WritePrometheus(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func parseModel(s string) (core.Model, error) {
	switch s {
	case "strong":
		return core.Strong, nil
	case "weak":
		return core.Weak, nil
	case "viable":
		return core.Viable, nil
	}
	return 0, fmt.Errorf("unknown model %q", s)
}

func modelSuffix(m core.Model) string {
	switch m {
	case core.Strong:
		return "s"
	case core.Weak:
		return "w"
	default:
		return "v"
	}
}

// describe annotates the sentinel errors with actionable context.
func describe(err error) error {
	var be *core.BudgetError
	switch {
	case errors.Is(err, core.ErrUndecidable):
		return fmt.Errorf("%w\n(the paper's Table I proves this cell undecidable; restrict the query language)", err)
	case errors.Is(err, core.ErrOpen):
		return fmt.Errorf("%w\n(the paper leaves this cell open)", err)
	case errors.Is(err, core.ErrDeadline):
		return fmt.Errorf("%w\n(the -timeout deadline expired; the verdict is unknown — raise -timeout)", err)
	case errors.Is(err, core.ErrInconsistent):
		return fmt.Errorf("%w\n(run -problem consistency to inspect)", err)
	case errors.As(err, &be) && errors.Is(err, core.ErrInconclusive):
		return fmt.Errorf("%w\n(raise options.rcqp_size_bound in the input document; consumed %d candidates)", err, be.Consumed)
	case errors.Is(err, core.ErrInconclusive):
		return fmt.Errorf("%w\n(raise options.rcqp_size_bound in the input document)", err)
	case errors.As(err, &be):
		return fmt.Errorf("%w\n(raise the %s option in the input document)", err, be.Cap)
	}
	return err
}
