// Command rcheck decides relative information completeness problems
// described by a JSON document (see internal/probjson for the format).
//
// Usage:
//
//	rcheck -problem <name> [-model strong|weak|viable] [-explain] file.json
//	rcheck -problem consistency file.json
//	cat file.json | rcheck -problem rcdp -model weak -
//
// Problems: consistency, extensibility, rcdp, rcqp, minp, certain
// (certain answers), models (list ModAdom members).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"relcomplete/internal/core"
	"relcomplete/internal/probjson"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rcheck:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("rcheck", flag.ContinueOnError)
	problem := fs.String("problem", "rcdp", "consistency | extensibility | rcdp | rcqp | minp | certain | models")
	model := fs.String("model", "strong", "completeness model: strong | weak | viable")
	explain := fs.Bool("explain", false, "print a counterexample when RCDP fails")
	maxModels := fs.Int("max-models", 10, "cap for -problem models")
	workers := fs.Int("workers", 0, "worker count for the parallel searches (0 = keep the document's options.parallelism, or GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("expected exactly one input file (or - for stdin)")
	}
	var data []byte
	var err error
	if fs.Arg(0) == "-" {
		data, err = io.ReadAll(stdin)
	} else {
		data, err = os.ReadFile(fs.Arg(0))
	}
	if err != nil {
		return err
	}
	p, ci, err := probjson.Decode(data)
	if err != nil {
		return err
	}
	if *workers != 0 {
		p.Options.Parallelism = *workers
	}
	m, err := parseModel(*model)
	if err != nil {
		return err
	}

	report := func(question string, answer bool) {
		verdict := "NO"
		if answer {
			verdict = "YES"
		}
		fmt.Fprintf(stdout, "%s: %s\n", question, verdict)
	}

	switch *problem {
	case "consistency":
		ok, err := p.Consistent(ci)
		if err != nil {
			return err
		}
		report("Mod(T, Dm, V) non-empty", ok)
	case "extensibility":
		db, err := p.AnyModel(ci)
		if err != nil {
			return err
		}
		if db == nil {
			return core.ErrInconsistent
		}
		ok, err := p.Extensible(db)
		if err != nil {
			return err
		}
		report("Ext(I, Dm, V) non-empty (on one model of T)", ok)
	case "rcdp":
		ok, cex, err := p.RCDPExplain(ci, m)
		if err != nil {
			return describe(err)
		}
		report(fmt.Sprintf("T ∈ RCQ%s(Q, Dm, V)", modelSuffix(m)), ok)
		if !ok && *explain && cex != nil {
			fmt.Fprintf(stdout, "counterexample: %s\n", cex)
		}
	case "rcqp":
		ok, err := p.RCQP(m)
		if err != nil {
			return describe(err)
		}
		report(fmt.Sprintf("RCQ%s(Q, Dm, V) non-empty", modelSuffix(m)), ok)
	case "minp":
		ok, err := p.MINP(ci, m)
		if err != nil {
			return describe(err)
		}
		report(fmt.Sprintf("T minimal in RCQ%s(Q, Dm, V)", modelSuffix(m)), ok)
	case "certain":
		ans, err := p.CertainAnswers(ci)
		if err != nil {
			return describe(err)
		}
		fmt.Fprintf(stdout, "certain answers (%d):\n", len(ans))
		for _, t := range ans {
			fmt.Fprintf(stdout, "  %s\n", t)
		}
	case "models":
		models, err := p.Models(ci, *maxModels)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "models (showing up to %d):\n", *maxModels)
		for _, db := range models {
			fmt.Fprintf(stdout, "  %s\n", db)
		}
	default:
		return fmt.Errorf("unknown problem %q", *problem)
	}
	return nil
}

func parseModel(s string) (core.Model, error) {
	switch s {
	case "strong":
		return core.Strong, nil
	case "weak":
		return core.Weak, nil
	case "viable":
		return core.Viable, nil
	}
	return 0, fmt.Errorf("unknown model %q", s)
}

func modelSuffix(m core.Model) string {
	switch m {
	case core.Strong:
		return "s"
	case core.Weak:
		return "w"
	default:
		return "v"
	}
}

// describe annotates the sentinel errors with actionable context.
func describe(err error) error {
	switch {
	case errors.Is(err, core.ErrUndecidable):
		return fmt.Errorf("%w\n(the paper's Table I proves this cell undecidable; restrict the query language)", err)
	case errors.Is(err, core.ErrOpen):
		return fmt.Errorf("%w\n(the paper leaves this cell open)", err)
	case errors.Is(err, core.ErrInconsistent):
		return fmt.Errorf("%w\n(run -problem consistency to inspect)", err)
	case errors.Is(err, core.ErrInconclusive):
		return fmt.Errorf("%w\n(raise options.rcqp_size_bound in the input document)", err)
	}
	return err
}
