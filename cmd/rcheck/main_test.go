package main

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"relcomplete/internal/adom"
	"relcomplete/internal/core"
	"relcomplete/internal/eval"
	"relcomplete/internal/obs"
)

const sampleDoc = `{
  "schema": {"relations": [
    {"name": "Order", "attrs": [{"name": "item"}, {"name": "qty"}]}]},
  "master": {
    "relations": [{"name": "Catalog", "attrs": [{"name": "item"}]}],
    "rows": {"Catalog": [["widget"]]}},
  "ccs": [{"name": "item_bound",
           "left":  "q(i) := Order(i, q)",
           "right": "p(i) := Catalog(i)"}],
  "query": {"calc": "Q(q) := Order('widget', q)"},
  "cinstance": {"rows": [
    {"rel": "Order", "terms": ["widget", "5"]}]}
}`

func writeSample(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "problem.json")
	if err := os.WriteFile(path, []byte(sampleDoc), 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

func runCheck(t *testing.T, args ...string) (string, error) {
	t.Helper()
	out, _, err := runCheck2(t, args...)
	return out, err
}

// runCheck2 additionally returns what the command wrote to stderr
// (the slow-op log's destination).
func runCheck2(t *testing.T, args ...string) (string, string, error) {
	t.Helper()
	var out, errOut strings.Builder
	err := run(args, strings.NewReader(""), &out, &errOut)
	return out.String(), errOut.String(), err
}

func TestRCheckConsistency(t *testing.T) {
	out, err := runCheck(t, "-problem", "consistency", writeSample(t))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "YES") {
		t.Fatalf("output = %q", out)
	}
}

func TestRCheckRCDPModels(t *testing.T) {
	path := writeSample(t)
	out, err := runCheck(t, "-problem", "rcdp", "-model", "weak", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "RCQw") {
		t.Fatalf("output = %q", out)
	}
	// Strong: open-world quantities, incomplete; -explain shows why.
	out, err = runCheck(t, "-problem", "rcdp", "-model", "strong", "-explain", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "NO") || !strings.Contains(out, "counterexample") {
		t.Fatalf("output = %q", out)
	}
}

func TestRCheckCertainAndModels(t *testing.T) {
	path := writeSample(t)
	out, err := runCheck(t, "-problem", "certain", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "(5)") {
		t.Fatalf("output = %q", out)
	}
	out, err = runCheck(t, "-problem", "models", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Order{") {
		t.Fatalf("output = %q", out)
	}
}

func TestRCheckExtensibility(t *testing.T) {
	out, err := runCheck(t, "-problem", "extensibility", writeSample(t))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "YES") { // quantities open-world
		t.Fatalf("output = %q", out)
	}
}

func TestRCheckStdinAndErrors(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-problem", "consistency", "-"},
		strings.NewReader(sampleDoc), &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if _, err := runCheck(t, "-problem", "nope", writeSample(t)); err == nil {
		t.Fatal("unknown problem should fail")
	}
	if _, err := runCheck(t, "-model", "nope", writeSample(t)); err == nil {
		t.Fatal("unknown model should fail")
	}
	if _, err := runCheck(t); err == nil {
		t.Fatal("missing file should fail")
	}
	if _, err := runCheck(t, "/does/not/exist.json"); err == nil {
		t.Fatal("unreadable file should fail")
	}
}

func TestRCheckUndecidableIsDescribed(t *testing.T) {
	doc := strings.Replace(sampleDoc,
		`"calc": "Q(q) := Order('widget', q)"`,
		`"calc": "Q(q) := ! Order('widget', q)"`, 1)
	path := filepath.Join(t.TempDir(), "fo.json")
	if err := os.WriteFile(path, []byte(doc), 0o600); err != nil {
		t.Fatal(err)
	}
	_, err := runCheck(t, "-problem", "rcdp", path)
	if err == nil || !strings.Contains(err.Error(), "undecidable") {
		t.Fatalf("err = %v", err)
	}
}

func TestRCheckMINPAndRCQP(t *testing.T) {
	path := writeSample(t)
	out, err := runCheck(t, "-problem", "minp", "-model", "weak", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "minimal") {
		t.Fatalf("output = %q", out)
	}
	// RCQP weak is trivially YES for CQ.
	out, err = runCheck(t, "-problem", "rcqp", "-model", "weak", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "YES") {
		t.Fatalf("output = %q", out)
	}
}

func TestRCheckInconsistentInstance(t *testing.T) {
	doc := strings.Replace(sampleDoc, `"terms": ["widget", "5"]`, `"terms": ["unknown-item", "5"]`, 1)
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(doc), 0o600); err != nil {
		t.Fatal(err)
	}
	_, err := runCheck(t, "-problem", "rcdp", "-model", "weak", path)
	if err == nil || !strings.Contains(err.Error(), "inconsistent") {
		t.Fatalf("err = %v", err)
	}
	// Extensibility on an inconsistent instance is also refused.
	if _, err := runCheck(t, "-problem", "extensibility", path); err == nil {
		t.Fatal("extensibility on inconsistent instance should fail")
	}
}

func TestRCheckJSONOutput(t *testing.T) {
	path := writeSample(t)
	out, err := runCheck(t, "-problem", "rcdp", "-model", "strong", "-json", path)
	if err != nil {
		t.Fatal(err)
	}
	var res result
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatalf("output is not one JSON object: %v\n%s", err, out)
	}
	if res.Problem != "rcdp" || res.Model != "strong" {
		t.Fatalf("res = %+v", res)
	}
	if res.Verdict == nil || *res.Verdict {
		t.Fatalf("verdict = %v, want false", res.Verdict)
	}
	if res.Counterexample == "" {
		t.Fatal("counterexample missing from JSON output")
	}
	if res.Stats.Counters["models_checked"] == 0 {
		t.Fatalf("stats missing models_checked: %v", res.Stats.Counters)
	}
	if res.Stats.Counters["cc_checks"] == 0 {
		t.Fatalf("stats missing cc_checks: %v", res.Stats.Counters)
	}
	if len(res.Stats.Phases) == 0 {
		t.Fatal("stats missing phase timings")
	}
	// The JSON object must round-trip.
	re, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var res2 result
	if err := json.Unmarshal(re, &res2); err != nil {
		t.Fatal(err)
	}
	if *res2.Verdict != *res.Verdict || res2.Stats.Counters["models_checked"] != res.Stats.Counters["models_checked"] {
		t.Fatalf("round trip changed the result: %+v vs %+v", res, res2)
	}
}

func TestRCheckTrace(t *testing.T) {
	path := filepath.Join("..", "..", "examples", "orders_rcdp.json")
	out, err := runCheck(t, "-problem", "rcdp", "-model", "strong", "-trace", path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"decide", "model", "counterexample", "extension=", "gained=", "verdict"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "NO") {
		t.Errorf("verdict line missing:\n%s", out)
	}
}

func TestRCheckBudgetExitCode(t *testing.T) {
	doc := strings.Replace(sampleDoc, `"cinstance"`,
		`"options": {"max_valuations": 1}, "cinstance"`, 1)
	doc = strings.Replace(doc, `["widget", "5"]`, `["widget", "?q"]`, 1)
	path := filepath.Join(t.TempDir(), "budget.json")
	if err := os.WriteFile(path, []byte(doc), 0o600); err != nil {
		t.Fatal(err)
	}
	_, err := runCheck(t, "-problem", "rcdp", "-model", "strong", path)
	if err == nil {
		t.Fatal("expected a budget error")
	}
	if got := exitCode(err); got != 2 {
		t.Fatalf("exitCode(%v) = %d, want 2", err, got)
	}
	var be *core.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err %v does not carry a BudgetError", err)
	}
	if be.Cap != "MaxValuations" || be.Limit != 1 {
		t.Fatalf("BudgetError = %+v", be)
	}
	// -json still emits the object (with the error embedded).
	out, jerr := runCheck(t, "-problem", "rcdp", "-model", "strong", "-json", path)
	if jerr == nil {
		t.Fatal("expected a budget error with -json too")
	}
	var res result
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatalf("JSON error output invalid: %v\n%s", err, out)
	}
	if res.Error == "" || res.Budget == nil || res.Budget.Cap != "MaxValuations" {
		t.Fatalf("res = %+v", res)
	}
}

func TestRCheckExitCodeMapping(t *testing.T) {
	if got := exitCode(core.ErrBudget); got != 2 {
		t.Fatalf("exitCode(ErrBudget) = %d", got)
	}
	if got := exitCode(core.ErrInconclusive); got != 2 {
		t.Fatalf("exitCode(ErrInconclusive) = %d", got)
	}
	if got := exitCode(core.ErrUndecidable); got != 1 {
		t.Fatalf("exitCode(ErrUndecidable) = %d", got)
	}
	if got := exitCode(adom.ErrBudget); got != 2 {
		t.Fatalf("exitCode(adom.ErrBudget) = %d", got)
	}
	if got := exitCode(eval.ErrBudget); got != 2 {
		t.Fatalf("exitCode(eval.ErrBudget) = %d", got)
	}
}

// TestRCheckMetricsOut dumps the final metrics in Prometheus text
// format and validates them against the in-repo exposition grammar.
func TestRCheckMetricsOut(t *testing.T) {
	mpath := filepath.Join(t.TempDir(), "metrics.prom")
	if _, err := runCheck(t, "-problem", "rcdp", "-metrics-out", mpath, writeSample(t)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidatePrometheusText(data); err != nil {
		t.Fatalf("metrics-out fails the exposition grammar: %v\n%s", err, data)
	}
	for _, want := range []string{
		"relcomplete_models_checked_total",
		`relcomplete_decider_wall_seconds_bucket{le="+Inf"} 1`,
		`relcomplete_phase_calls_total{phase="rcdp_strong"} 1`,
	} {
		if !strings.Contains(string(data), want) {
			t.Errorf("metrics-out missing %q", want)
		}
	}

	// "-" writes the exposition to stdout after the verdict.
	out, err := runCheck(t, "-problem", "rcdp", "-metrics-out", "-", writeSample(t))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "relcomplete_models_checked_total") {
		t.Fatalf("stdout exposition missing:\n%s", out)
	}
}

// TestRCheckMetricsOutOnBudgetError: the deferred dump must still fire
// when the run dies on a budget error, so the failed run is scrapeable.
func TestRCheckMetricsOutOnBudgetError(t *testing.T) {
	doc := strings.Replace(sampleDoc, `"cinstance"`,
		`"options": {"max_valuations": 1}, "cinstance"`, 1)
	doc = strings.Replace(doc, `["widget", "5"]`, `["widget", "?q"]`, 1)
	path := filepath.Join(t.TempDir(), "budget.json")
	if err := os.WriteFile(path, []byte(doc), 0o600); err != nil {
		t.Fatal(err)
	}
	mpath := filepath.Join(t.TempDir(), "metrics.prom")
	if _, err := runCheck(t, "-problem", "rcdp", "-metrics-out", mpath, path); err == nil {
		t.Fatal("expected a budget error")
	}
	data, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidatePrometheusText(data); err != nil {
		t.Fatalf("metrics after budget error invalid: %v", err)
	}
	if !strings.Contains(string(data), "relcomplete_budget_errors_total 1") {
		t.Fatalf("budget error not visible in the exposition:\n%s", data)
	}
}

// TestRCheckSlowlog exercises the slow-op path on the orders example
// with a 1ns threshold: every decider call is "slow", so the stderr
// stream must carry the dump with the flight recorder's events even
// though -trace is off.
func TestRCheckSlowlog(t *testing.T) {
	path := filepath.Join("..", "..", "examples", "orders_rcdp.json")
	out, errOut, err := runCheck2(t, "-problem", "rcdp", "-model", "strong", "-slowlog", "1ns", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "NO") {
		t.Fatalf("verdict missing:\n%s", out)
	}
	for _, want := range []string{
		"=== SLOW OP op=rcdp_strong",
		"threshold=1ns trace_id=- ===",
		"flight recorder:",
		"event(s) retained",
		"decide",
		"histograms:",
		"decider_wall_seconds",
		"=== END SLOW OP op=rcdp_strong ===",
	} {
		if !strings.Contains(errOut, want) {
			t.Errorf("slow-op dump missing %q:\n%s", want, errOut)
		}
	}
	if strings.Contains(out, "=== SLOW OP") {
		t.Error("slow-op dump leaked to stdout")
	}
}

func TestRCheckTimeoutExpired(t *testing.T) {
	// A 1ns deadline has fired before the decider starts: deterministic
	// deadline error, exit code 3, "deadline" detail in -json.
	path := writeSample(t)
	out, err := runCheck(t, "-problem", "rcdp", "-model", "weak", "-timeout", "1ns", "-json", path)
	if err == nil {
		t.Fatal("want a deadline error, got nil")
	}
	if !errors.Is(err, core.ErrDeadline) {
		t.Fatalf("want ErrDeadline, got %v", err)
	}
	if got := exitCode(err); got != 3 {
		t.Fatalf("exit code = %d, want 3", got)
	}
	var res result
	if jerr := json.Unmarshal([]byte(out), &res); jerr != nil {
		t.Fatalf("bad JSON: %v\n%s", jerr, out)
	}
	if res.Deadline == nil {
		t.Fatalf("no deadline detail in %s", out)
	}
	if res.Deadline.Op == "" || res.Deadline.Elapsed == "" {
		t.Fatalf("incomplete deadline detail: %+v", res.Deadline)
	}
	if res.Verdict != nil {
		t.Fatalf("verdict must be absent on deadline, got %v", *res.Verdict)
	}
}

func TestRCheckTimeoutGenerous(t *testing.T) {
	// A generous deadline changes nothing: same verdict, no deadline
	// detail, exit path clean.
	path := writeSample(t)
	out, err := runCheck(t, "-problem", "rcdp", "-model", "weak", "-timeout", "1h", "-json", path)
	if err != nil {
		t.Fatal(err)
	}
	var res result
	if jerr := json.Unmarshal([]byte(out), &res); jerr != nil {
		t.Fatalf("bad JSON: %v\n%s", jerr, out)
	}
	if res.Deadline != nil {
		t.Fatalf("unexpected deadline detail: %+v", res.Deadline)
	}
	if res.Verdict == nil || !*res.Verdict {
		t.Fatalf("want verdict true, got %v", res.Verdict)
	}
}

func TestRCheckTraceOut(t *testing.T) {
	path := writeSample(t)
	traceFile := filepath.Join(t.TempDir(), "spans.jsonl")
	out, err := runCheck(t, "-problem", "rcdp", "-model", "weak", "-trace-out", traceFile, path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "YES") {
		t.Fatalf("output = %q", out)
	}
	raw, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatalf("trace-out wrote no file: %v", err)
	}
	var spans []obs.SpanData
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		var sp obs.SpanData
		if jerr := json.Unmarshal([]byte(line), &sp); jerr != nil {
			t.Fatalf("trace-out line is not a JSON span: %v\n%s", jerr, line)
		}
		spans = append(spans, sp)
	}
	if len(spans) < 2 {
		t.Fatalf("trace-out holds %d spans, want the root plus decider phases", len(spans))
	}
	// One trace throughout, ending with the root span.
	trace := spans[0].TraceID
	if trace == "" {
		t.Fatal("exported span has no trace id")
	}
	var names []string
	for _, sp := range spans {
		if sp.TraceID != trace {
			t.Fatalf("span %q carries trace %q, want %q", sp.Name, sp.TraceID, trace)
		}
		names = append(names, sp.Name)
	}
	if names[len(names)-1] != "rcheck rcdp" {
		t.Fatalf("last exported span = %q, want the root 'rcheck rcdp' (all names: %v)", names[len(names)-1], names)
	}
}
