package main

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"relcomplete/internal/adom"
	"relcomplete/internal/core"
	"relcomplete/internal/eval"
)

const sampleDoc = `{
  "schema": {"relations": [
    {"name": "Order", "attrs": [{"name": "item"}, {"name": "qty"}]}]},
  "master": {
    "relations": [{"name": "Catalog", "attrs": [{"name": "item"}]}],
    "rows": {"Catalog": [["widget"]]}},
  "ccs": [{"name": "item_bound",
           "left":  "q(i) := Order(i, q)",
           "right": "p(i) := Catalog(i)"}],
  "query": {"calc": "Q(q) := Order('widget', q)"},
  "cinstance": {"rows": [
    {"rel": "Order", "terms": ["widget", "5"]}]}
}`

func writeSample(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "problem.json")
	if err := os.WriteFile(path, []byte(sampleDoc), 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

func runCheck(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var out strings.Builder
	err := run(args, strings.NewReader(""), &out)
	return out.String(), err
}

func TestRCheckConsistency(t *testing.T) {
	out, err := runCheck(t, "-problem", "consistency", writeSample(t))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "YES") {
		t.Fatalf("output = %q", out)
	}
}

func TestRCheckRCDPModels(t *testing.T) {
	path := writeSample(t)
	out, err := runCheck(t, "-problem", "rcdp", "-model", "weak", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "RCQw") {
		t.Fatalf("output = %q", out)
	}
	// Strong: open-world quantities, incomplete; -explain shows why.
	out, err = runCheck(t, "-problem", "rcdp", "-model", "strong", "-explain", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "NO") || !strings.Contains(out, "counterexample") {
		t.Fatalf("output = %q", out)
	}
}

func TestRCheckCertainAndModels(t *testing.T) {
	path := writeSample(t)
	out, err := runCheck(t, "-problem", "certain", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "(5)") {
		t.Fatalf("output = %q", out)
	}
	out, err = runCheck(t, "-problem", "models", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Order{") {
		t.Fatalf("output = %q", out)
	}
}

func TestRCheckExtensibility(t *testing.T) {
	out, err := runCheck(t, "-problem", "extensibility", writeSample(t))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "YES") { // quantities open-world
		t.Fatalf("output = %q", out)
	}
}

func TestRCheckStdinAndErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-problem", "consistency", "-"},
		strings.NewReader(sampleDoc), &out); err != nil {
		t.Fatal(err)
	}
	if _, err := runCheck(t, "-problem", "nope", writeSample(t)); err == nil {
		t.Fatal("unknown problem should fail")
	}
	if _, err := runCheck(t, "-model", "nope", writeSample(t)); err == nil {
		t.Fatal("unknown model should fail")
	}
	if _, err := runCheck(t); err == nil {
		t.Fatal("missing file should fail")
	}
	if _, err := runCheck(t, "/does/not/exist.json"); err == nil {
		t.Fatal("unreadable file should fail")
	}
}

func TestRCheckUndecidableIsDescribed(t *testing.T) {
	doc := strings.Replace(sampleDoc,
		`"calc": "Q(q) := Order('widget', q)"`,
		`"calc": "Q(q) := ! Order('widget', q)"`, 1)
	path := filepath.Join(t.TempDir(), "fo.json")
	if err := os.WriteFile(path, []byte(doc), 0o600); err != nil {
		t.Fatal(err)
	}
	_, err := runCheck(t, "-problem", "rcdp", path)
	if err == nil || !strings.Contains(err.Error(), "undecidable") {
		t.Fatalf("err = %v", err)
	}
}

func TestRCheckMINPAndRCQP(t *testing.T) {
	path := writeSample(t)
	out, err := runCheck(t, "-problem", "minp", "-model", "weak", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "minimal") {
		t.Fatalf("output = %q", out)
	}
	// RCQP weak is trivially YES for CQ.
	out, err = runCheck(t, "-problem", "rcqp", "-model", "weak", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "YES") {
		t.Fatalf("output = %q", out)
	}
}

func TestRCheckInconsistentInstance(t *testing.T) {
	doc := strings.Replace(sampleDoc, `"terms": ["widget", "5"]`, `"terms": ["unknown-item", "5"]`, 1)
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(doc), 0o600); err != nil {
		t.Fatal(err)
	}
	_, err := runCheck(t, "-problem", "rcdp", "-model", "weak", path)
	if err == nil || !strings.Contains(err.Error(), "inconsistent") {
		t.Fatalf("err = %v", err)
	}
	// Extensibility on an inconsistent instance is also refused.
	if _, err := runCheck(t, "-problem", "extensibility", path); err == nil {
		t.Fatal("extensibility on inconsistent instance should fail")
	}
}

func TestRCheckJSONOutput(t *testing.T) {
	path := writeSample(t)
	out, err := runCheck(t, "-problem", "rcdp", "-model", "strong", "-json", path)
	if err != nil {
		t.Fatal(err)
	}
	var res result
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatalf("output is not one JSON object: %v\n%s", err, out)
	}
	if res.Problem != "rcdp" || res.Model != "strong" {
		t.Fatalf("res = %+v", res)
	}
	if res.Verdict == nil || *res.Verdict {
		t.Fatalf("verdict = %v, want false", res.Verdict)
	}
	if res.Counterexample == "" {
		t.Fatal("counterexample missing from JSON output")
	}
	if res.Stats.Counters["models_checked"] == 0 {
		t.Fatalf("stats missing models_checked: %v", res.Stats.Counters)
	}
	if res.Stats.Counters["cc_checks"] == 0 {
		t.Fatalf("stats missing cc_checks: %v", res.Stats.Counters)
	}
	if len(res.Stats.Phases) == 0 {
		t.Fatal("stats missing phase timings")
	}
	// The JSON object must round-trip.
	re, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var res2 result
	if err := json.Unmarshal(re, &res2); err != nil {
		t.Fatal(err)
	}
	if *res2.Verdict != *res.Verdict || res2.Stats.Counters["models_checked"] != res.Stats.Counters["models_checked"] {
		t.Fatalf("round trip changed the result: %+v vs %+v", res, res2)
	}
}

func TestRCheckTrace(t *testing.T) {
	path := filepath.Join("..", "..", "examples", "orders_rcdp.json")
	out, err := runCheck(t, "-problem", "rcdp", "-model", "strong", "-trace", path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"decide", "model", "counterexample", "extension=", "gained=", "verdict"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "NO") {
		t.Errorf("verdict line missing:\n%s", out)
	}
}

func TestRCheckBudgetExitCode(t *testing.T) {
	doc := strings.Replace(sampleDoc, `"cinstance"`,
		`"options": {"max_valuations": 1}, "cinstance"`, 1)
	doc = strings.Replace(doc, `["widget", "5"]`, `["widget", "?q"]`, 1)
	path := filepath.Join(t.TempDir(), "budget.json")
	if err := os.WriteFile(path, []byte(doc), 0o600); err != nil {
		t.Fatal(err)
	}
	_, err := runCheck(t, "-problem", "rcdp", "-model", "strong", path)
	if err == nil {
		t.Fatal("expected a budget error")
	}
	if got := exitCode(err); got != 2 {
		t.Fatalf("exitCode(%v) = %d, want 2", err, got)
	}
	var be *core.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err %v does not carry a BudgetError", err)
	}
	if be.Cap != "MaxValuations" || be.Limit != 1 {
		t.Fatalf("BudgetError = %+v", be)
	}
	// -json still emits the object (with the error embedded).
	out, jerr := runCheck(t, "-problem", "rcdp", "-model", "strong", "-json", path)
	if jerr == nil {
		t.Fatal("expected a budget error with -json too")
	}
	var res result
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatalf("JSON error output invalid: %v\n%s", err, out)
	}
	if res.Error == "" || res.Budget == nil || res.Budget.Cap != "MaxValuations" {
		t.Fatalf("res = %+v", res)
	}
}

func TestRCheckExitCodeMapping(t *testing.T) {
	if got := exitCode(core.ErrBudget); got != 2 {
		t.Fatalf("exitCode(ErrBudget) = %d", got)
	}
	if got := exitCode(core.ErrInconclusive); got != 2 {
		t.Fatalf("exitCode(ErrInconclusive) = %d", got)
	}
	if got := exitCode(core.ErrUndecidable); got != 1 {
		t.Fatalf("exitCode(ErrUndecidable) = %d", got)
	}
	if got := exitCode(adom.ErrBudget); got != 2 {
		t.Fatalf("exitCode(adom.ErrBudget) = %d", got)
	}
	if got := exitCode(eval.ErrBudget); got != 2 {
		t.Fatalf("exitCode(eval.ErrBudget) = %d", got)
	}
}
