package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleDoc = `{
  "schema": {"relations": [
    {"name": "Order", "attrs": [{"name": "item"}, {"name": "qty"}]}]},
  "master": {
    "relations": [{"name": "Catalog", "attrs": [{"name": "item"}]}],
    "rows": {"Catalog": [["widget"]]}},
  "ccs": [{"name": "item_bound",
           "left":  "q(i) := Order(i, q)",
           "right": "p(i) := Catalog(i)"}],
  "query": {"calc": "Q(q) := Order('widget', q)"},
  "cinstance": {"rows": [
    {"rel": "Order", "terms": ["widget", "5"]}]}
}`

func writeSample(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "problem.json")
	if err := os.WriteFile(path, []byte(sampleDoc), 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

func runCheck(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var out strings.Builder
	err := run(args, strings.NewReader(""), &out)
	return out.String(), err
}

func TestRCheckConsistency(t *testing.T) {
	out, err := runCheck(t, "-problem", "consistency", writeSample(t))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "YES") {
		t.Fatalf("output = %q", out)
	}
}

func TestRCheckRCDPModels(t *testing.T) {
	path := writeSample(t)
	out, err := runCheck(t, "-problem", "rcdp", "-model", "weak", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "RCQw") {
		t.Fatalf("output = %q", out)
	}
	// Strong: open-world quantities, incomplete; -explain shows why.
	out, err = runCheck(t, "-problem", "rcdp", "-model", "strong", "-explain", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "NO") || !strings.Contains(out, "counterexample") {
		t.Fatalf("output = %q", out)
	}
}

func TestRCheckCertainAndModels(t *testing.T) {
	path := writeSample(t)
	out, err := runCheck(t, "-problem", "certain", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "(5)") {
		t.Fatalf("output = %q", out)
	}
	out, err = runCheck(t, "-problem", "models", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Order{") {
		t.Fatalf("output = %q", out)
	}
}

func TestRCheckExtensibility(t *testing.T) {
	out, err := runCheck(t, "-problem", "extensibility", writeSample(t))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "YES") { // quantities open-world
		t.Fatalf("output = %q", out)
	}
}

func TestRCheckStdinAndErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-problem", "consistency", "-"},
		strings.NewReader(sampleDoc), &out); err != nil {
		t.Fatal(err)
	}
	if _, err := runCheck(t, "-problem", "nope", writeSample(t)); err == nil {
		t.Fatal("unknown problem should fail")
	}
	if _, err := runCheck(t, "-model", "nope", writeSample(t)); err == nil {
		t.Fatal("unknown model should fail")
	}
	if _, err := runCheck(t); err == nil {
		t.Fatal("missing file should fail")
	}
	if _, err := runCheck(t, "/does/not/exist.json"); err == nil {
		t.Fatal("unreadable file should fail")
	}
}

func TestRCheckUndecidableIsDescribed(t *testing.T) {
	doc := strings.Replace(sampleDoc,
		`"calc": "Q(q) := Order('widget', q)"`,
		`"calc": "Q(q) := ! Order('widget', q)"`, 1)
	path := filepath.Join(t.TempDir(), "fo.json")
	if err := os.WriteFile(path, []byte(doc), 0o600); err != nil {
		t.Fatal(err)
	}
	_, err := runCheck(t, "-problem", "rcdp", path)
	if err == nil || !strings.Contains(err.Error(), "undecidable") {
		t.Fatalf("err = %v", err)
	}
}

func TestRCheckMINPAndRCQP(t *testing.T) {
	path := writeSample(t)
	out, err := runCheck(t, "-problem", "minp", "-model", "weak", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "minimal") {
		t.Fatalf("output = %q", out)
	}
	// RCQP weak is trivially YES for CQ.
	out, err = runCheck(t, "-problem", "rcqp", "-model", "weak", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "YES") {
		t.Fatalf("output = %q", out)
	}
}

func TestRCheckInconsistentInstance(t *testing.T) {
	doc := strings.Replace(sampleDoc, `"terms": ["widget", "5"]`, `"terms": ["unknown-item", "5"]`, 1)
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(doc), 0o600); err != nil {
		t.Fatal(err)
	}
	_, err := runCheck(t, "-problem", "rcdp", "-model", "weak", path)
	if err == nil || !strings.Contains(err.Error(), "inconsistent") {
		t.Fatalf("err = %v", err)
	}
	// Extensibility on an inconsistent instance is also refused.
	if _, err := runCheck(t, "-problem", "extensibility", path); err == nil {
		t.Fatal("extensibility on inconsistent instance should fail")
	}
}
