package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

// startDaemon runs the daemon in a goroutine and returns its base URL,
// the signal channel that stands in for the process's, and the channel
// run's error will land on.
func startDaemon(t *testing.T, args []string) (baseURL string, sigs chan os.Signal, errs chan error) {
	t.Helper()
	sigs = make(chan os.Signal, 1)
	ready := make(chan string, 1)
	errs = make(chan error, 1)
	var stderr bytes.Buffer
	go func() {
		errs <- run(args, &stderr, sigs, ready)
	}()
	select {
	case addr := <-ready:
		return "http://" + addr, sigs, errs
	case err := <-errs:
		t.Fatalf("daemon died before ready: %v (stderr: %s)", err, stderr.String())
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	return "", nil, nil
}

// The full daemon lifecycle: start on a random port, load a problem,
// decide it, SIGTERM, clean drain (nil return = process exit 0).
func TestDaemonLifecycle(t *testing.T) {
	base, sigs, errs := startDaemon(t, []string{"-addr", "127.0.0.1:0"})

	raw, err := os.ReadFile("../../examples/orders_rcdp.json")
	if err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodPut, base+"/v1/problems/orders", bytes.NewReader(raw))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT status = %d", resp.StatusCode)
	}

	dresp, err := http.Post(base+"/v1/problems/orders/decide", "application/json",
		strings.NewReader(`{"property": "rcdp", "model": "strong"}`))
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Verdict *bool `json:"verdict"`
	}
	if err := json.NewDecoder(dresp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK || body.Verdict == nil || *body.Verdict {
		t.Fatalf("decide: status=%d verdict=%v", dresp.StatusCode, body.Verdict)
	}

	// The debug surface is mounted alongside the API.
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, mresp.Body)
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", mresp.StatusCode)
	}

	http.DefaultClient.CloseIdleConnections()
	sigs <- syscall.SIGTERM
	select {
	case err := <-errs:
		if err != nil {
			t.Fatalf("drain should exit clean, got %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never drained")
	}
}

func TestDaemonBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-no-such-flag"},
		{"positional-arg"},
		{"-addr", "definitely:not:an:address"},
	} {
		if err := run(args, io.Discard, nil, nil); err == nil {
			t.Fatalf("%q accepted", args)
		}
	}
}

// A second daemon on the same port must fail fast with the bind error,
// not hang waiting for signals.
func TestDaemonBindConflict(t *testing.T) {
	base, sigs, errs := startDaemon(t, []string{"-addr", "127.0.0.1:0"})
	addr := strings.TrimPrefix(base, "http://")
	if err := run([]string{"-addr", addr}, io.Discard, nil, nil); err == nil {
		t.Fatal("conflicting bind accepted")
	}
	sigs <- syscall.SIGTERM
	if err := <-errs; err != nil {
		t.Fatalf("first daemon drain: %v", err)
	}
}

// The daemon-level crash-recovery round trip: load problems with
// -data-dir, decide, drain (writing the final snapshot), then boot a
// second daemon on the same directory and find everything restored —
// same problems, same verdict — with /readyz green.
func TestDaemonRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	raw, err := os.ReadFile("../../examples/orders_rcdp.json")
	if err != nil {
		t.Fatal(err)
	}
	putProblem := func(base, name string) {
		t.Helper()
		req, _ := http.NewRequest(http.MethodPut, base+"/v1/problems/"+name, bytes.NewReader(raw))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("PUT %s status = %d", name, resp.StatusCode)
		}
	}
	decideVerdict := func(base string) bool {
		t.Helper()
		resp, err := http.Post(base+"/v1/problems/orders/decide", "application/json",
			strings.NewReader(`{"property": "rcdp", "model": "strong"}`))
		if err != nil {
			t.Fatal(err)
		}
		var body struct {
			Verdict *bool `json:"verdict"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || body.Verdict == nil {
			t.Fatalf("decide: status=%d verdict=%v", resp.StatusCode, body.Verdict)
		}
		return *body.Verdict
	}

	// First life.
	base, sigs, errs := startDaemon(t, []string{"-addr", "127.0.0.1:0", "-data-dir", dir})
	putProblem(base, "orders")
	putProblem(base, "spare")
	v1 := decideVerdict(base)
	http.DefaultClient.CloseIdleConnections()
	sigs <- syscall.SIGTERM
	if err := <-errs; err != nil {
		t.Fatalf("first drain: %v", err)
	}

	// Second life on the same data dir.
	base2, sigs2, errs2 := startDaemon(t, []string{"-addr", "127.0.0.1:0", "-data-dir", dir})
	rresp, err := http.Get(base2 + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, rresp.Body)
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz after restart = %d", rresp.StatusCode)
	}
	lresp, err := http.Get(base2 + "/v1/problems")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Problems []struct {
			Name string `json:"name"`
		} `json:"problems"`
	}
	if err := json.NewDecoder(lresp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	lresp.Body.Close()
	if len(list.Problems) != 2 {
		t.Fatalf("restored %d problems, want 2: %+v", len(list.Problems), list)
	}
	if v2 := decideVerdict(base2); v2 != v1 {
		t.Fatalf("verdict changed across restart: %v != %v", v2, v1)
	}

	http.DefaultClient.CloseIdleConnections()
	sigs2 <- syscall.SIGTERM
	if err := <-errs2; err != nil {
		t.Fatalf("second drain: %v", err)
	}
}
