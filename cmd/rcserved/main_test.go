package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

// startDaemon runs the daemon in a goroutine and returns its base URL,
// the signal channel that stands in for the process's, and the channel
// run's error will land on.
func startDaemon(t *testing.T, args []string) (baseURL string, sigs chan os.Signal, errs chan error) {
	t.Helper()
	sigs = make(chan os.Signal, 1)
	ready := make(chan string, 1)
	errs = make(chan error, 1)
	var stderr bytes.Buffer
	go func() {
		errs <- run(args, &stderr, sigs, ready)
	}()
	select {
	case addr := <-ready:
		return "http://" + addr, sigs, errs
	case err := <-errs:
		t.Fatalf("daemon died before ready: %v (stderr: %s)", err, stderr.String())
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	return "", nil, nil
}

// The full daemon lifecycle: start on a random port, load a problem,
// decide it, SIGTERM, clean drain (nil return = process exit 0).
func TestDaemonLifecycle(t *testing.T) {
	base, sigs, errs := startDaemon(t, []string{"-addr", "127.0.0.1:0"})

	raw, err := os.ReadFile("../../examples/orders_rcdp.json")
	if err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodPut, base+"/v1/problems/orders", bytes.NewReader(raw))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT status = %d", resp.StatusCode)
	}

	dresp, err := http.Post(base+"/v1/problems/orders/decide", "application/json",
		strings.NewReader(`{"property": "rcdp", "model": "strong"}`))
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Verdict *bool `json:"verdict"`
	}
	if err := json.NewDecoder(dresp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK || body.Verdict == nil || *body.Verdict {
		t.Fatalf("decide: status=%d verdict=%v", dresp.StatusCode, body.Verdict)
	}

	// The debug surface is mounted alongside the API.
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, mresp.Body)
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", mresp.StatusCode)
	}

	http.DefaultClient.CloseIdleConnections()
	sigs <- syscall.SIGTERM
	select {
	case err := <-errs:
		if err != nil {
			t.Fatalf("drain should exit clean, got %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never drained")
	}
}

func TestDaemonBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-no-such-flag"},
		{"positional-arg"},
		{"-addr", "definitely:not:an:address"},
	} {
		if err := run(args, io.Discard, nil, nil); err == nil {
			t.Fatalf("%q accepted", args)
		}
	}
}

// A second daemon on the same port must fail fast with the bind error,
// not hang waiting for signals.
func TestDaemonBindConflict(t *testing.T) {
	base, sigs, errs := startDaemon(t, []string{"-addr", "127.0.0.1:0"})
	addr := strings.TrimPrefix(base, "http://")
	if err := run([]string{"-addr", addr}, io.Discard, nil, nil); err == nil {
		t.Fatal("conflicting bind accepted")
	}
	sigs <- syscall.SIGTERM
	if err := <-errs; err != nil {
		t.Fatalf("first daemon drain: %v", err)
	}
}
