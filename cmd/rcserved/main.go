// Command rcserved is the long-running completeness-decision service:
// an HTTP/JSON daemon holding named (T, Dm, V) problem instances
// resident and deciding relative-completeness properties over them
// under per-request deadlines, budgets and bounded admission.
//
// Usage:
//
//	rcserved -addr :8080                 # serve the /v1 API (+ /metrics)
//	rcserved -addr :0                    # random port, printed to stderr
//	rcserved -workers 4 -max-concurrent 8 -max-queue 128
//	rcserved -max-resident-mb 64         # registry LRU eviction cap
//	rcserved -drain-timeout 10s          # SIGTERM drain deadline
//	rcserved -slowlog 250ms              # slow-op dumps to stderr
//
// API:
//
//	PUT    /v1/problems/{name}          load a probjson document
//	GET    /v1/problems[/{name}]        list / inspect loaded problems
//	DELETE /v1/problems/{name}          unload
//	POST   /v1/problems/{name}/decide   {"property": "rcdp", "model":
//	       "strong", "timeout_ms": 500, "budget": {...}, "query": "..."}
//	       (?trace=1 returns the request's span tree inline)
//	GET    /healthz                     200 serving / 503 draining
//	GET    /metrics                     Prometheus text exposition, with
//	       per-tenant labelled series and runtime gauges; OpenMetrics
//	       with trace-id exemplars via Accept: application/openmetrics-text
//	       or ?format=openmetrics
//	GET    /debug/requests              recent decide requests, newest
//	       first: trace id, decider, outcome, timings, span tree
//	GET    /debug/plans                 top-K slowest plans across
//	       resident problems (?k=, default 10), with per-node timings
//
// Every request runs under a request-scoped trace: a client-sent W3C
// traceparent header is adopted (and echoed back), otherwise fresh ids
// are minted. All operational output is structured JSON on stderr via
// log/slog — an access-log line per request, a decision-log line per
// decide (trace_id, problem, decider, verdict, outcome, queue-wait and
// wall times), warn lines on registry eviction and admission overflow,
// and the -slowlog flight-recorder dumps tagged with the trace id.
//
// Status mapping: an expired per-request deadline answers 408 with the
// DeadlineError detail (op, elapsed, progress snapshot); an exhausted
// search budget answers 422 with the BudgetError detail; a full
// admission queue answers 429 with Retry-After. The verdict in all
// three cases is unknown — never a fabricated "no".
//
// On SIGTERM/SIGINT the daemon stops accepting connections, turns
// /healthz 503, finishes in-flight decisions within -drain-timeout and
// exits 0 on a clean drain (1 when the deadline cut requests short).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"relcomplete/internal/httpx"
	"relcomplete/internal/obs"
	"relcomplete/internal/relation"
	"relcomplete/internal/server"
)

func main() {
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	if err := run(os.Args[1:], os.Stderr, sigs, nil); err != nil {
		fmt.Fprintln(os.Stderr, "rcserved:", err)
		os.Exit(1)
	}
}

// run starts the daemon and blocks until a signal arrives, then drains.
// ready, when non-nil, receives the bound address once the server is
// listening (tests use it instead of scraping stderr).
func run(args []string, stderr io.Writer, sigs <-chan os.Signal, ready chan<- string) error {
	fs := flag.NewFlagSet("rcserved", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8080", "listen address for the API and /metrics")
	workers := fs.Int("workers", 0, "Options.Parallelism for loaded problems (0 = GOMAXPROCS)")
	maxConcurrent := fs.Int("max-concurrent", 4, "decide calls running at once (admission concurrency cap)")
	maxQueue := fs.Int("max-queue", 64, "decide calls waiting for a slot before 429s (bounded queue depth)")
	maxResidentMB := fs.Int64("max-resident-mb", 256, "registry resident-bytes cap in MiB (LRU eviction; -1 = unlimited)")
	defaultTimeout := fs.Duration("default-timeout", 30*time.Second, "decide deadline when the request sets no timeout_ms")
	maxTimeout := fs.Duration("max-timeout", 5*time.Minute, "upper bound on a request's timeout_ms")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "SIGTERM: how long in-flight decisions may run before hard close")
	boxed := fs.Bool("boxed", false, "ablation: boxed (non-interned) relation storage for loaded problems")
	slowlog := fs.Duration("slowlog", 0, "dump the flight recorder to stderr when one decider call exceeds this (0 = off)")
	traceExport := fs.String("trace-export", "", "export finished request spans: a file path gets one JSON span per line, an http(s):// URL POSTs OTLP/HTTP JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments %q", fs.Args())
	}

	// All operational output is structured JSON on stderr: access and
	// decision logs, eviction/overload warnings, lifecycle messages.
	logger := slog.New(slog.NewJSONHandler(stderr, nil))
	metrics := obs.NewMetrics()
	relation.SetMetrics(metrics)     // index counters live behind a process-global hook
	relation.SetDefaultBoxed(*boxed) // storage ablation, set before any document builds
	maxResident := *maxResidentMB
	if maxResident > 0 {
		maxResident <<= 20
	}
	// The span export pipeline is optional: finished request traces go
	// to a JSONL file or an OTLP/HTTP collector on a background worker,
	// never blocking a decide. Closed after the drain so in-flight
	// request spans still flush.
	var exporter *obs.SpanExporter
	if *traceExport != "" {
		var sink obs.SpanSink
		if strings.HasPrefix(*traceExport, "http://") || strings.HasPrefix(*traceExport, "https://") {
			sink = obs.NewOTLPSink(*traceExport, "rcserved", nil)
		} else {
			s, err := obs.OpenJSONLFile(*traceExport)
			if err != nil {
				return fmt.Errorf("trace-export: %w", err)
			}
			sink = s
		}
		exporter = obs.NewSpanExporter(sink, obs.ExporterConfig{})
		defer exporter.Close()
	}

	svc := server.New(server.Config{
		Workers:          *workers,
		MaxConcurrent:    *maxConcurrent,
		MaxQueue:         *maxQueue,
		MaxResidentBytes: maxResident,
		DefaultTimeout:   *defaultTimeout,
		MaxTimeout:       *maxTimeout,
		Metrics:          metrics,
		Logger:           logger,
		SlowOpThreshold:  *slowlog,
		SlowOpSink:       stderr,
		TraceExporter:    exporter,
	})

	mux := http.NewServeMux()
	mux.Handle("/", svc)
	httpx.PublishSnapshot("solver", metrics)
	httpx.RegisterDebug(mux, metrics) // /metrics, /debug/vars, /debug/pprof

	// The access-log middleware owns the request root span: it ingests
	// the client's traceparent, stamps the response header, writes one
	// JSON line per request — for /v1 and debug routes alike — and, when
	// -trace-export is set, hands the finished span tree to the exporter.
	srv, err := httpx.Serve(*addr, httpx.AccessLogExport(logger, exporter, mux))
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	bound := srv.Addr().String()
	logger.LogAttrs(context.Background(), slog.LevelInfo, "rcserved: serving /v1",
		slog.String("addr", bound))
	if ready != nil {
		ready <- bound
	}

	sig := <-sigs
	logger.LogAttrs(context.Background(), slog.LevelInfo, "rcserved: draining",
		slog.String("signal", sig.String()),
		slog.Duration("deadline", *drainTimeout))
	svc.StartDrain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	logger.LogAttrs(context.Background(), slog.LevelInfo, "rcserved: drained cleanly")
	return nil
}
