// Command rcserved is the long-running completeness-decision service:
// an HTTP/JSON daemon holding named (T, Dm, V) problem instances
// resident and deciding relative-completeness properties over them
// under per-request deadlines, budgets and bounded admission.
//
// Usage:
//
//	rcserved -addr :8080                 # serve the /v1 API (+ /metrics)
//	rcserved -addr :0                    # random port, printed to stderr
//	rcserved -workers 4 -max-concurrent 8 -max-queue 128
//	rcserved -max-resident-mb 64         # registry LRU eviction cap
//	rcserved -drain-timeout 10s          # SIGTERM drain deadline
//	rcserved -slowlog 250ms              # slow-op dumps to stderr
//	rcserved -data-dir /var/lib/rcserved # crash-safe registry (WAL+snapshots)
//	rcserved -queue-target 500ms         # shed decides when queue delay tops this
//	rcserved -tenant-rate 10 -breaker-threshold 5   # per-problem isolation
//
// API:
//
//	PUT    /v1/problems/{name}          load a probjson document
//	GET    /v1/problems[/{name}]        list / inspect loaded problems
//	DELETE /v1/problems/{name}          unload
//	POST   /v1/problems/{name}/decide   {"property": "rcdp", "model":
//	       "strong", "timeout_ms": 500, "budget": {...}, "query": "..."}
//	       (?trace=1 returns the request's span tree inline)
//	GET    /healthz                     200 alive / 503 draining (liveness)
//	GET    /readyz                      readiness: 503 until recovery
//	       replay completes, 503 when the WAL cannot commit, 503 once
//	       draining begins — the load balancer's routing signal
//	GET    /metrics                     Prometheus text exposition, with
//	       per-tenant labelled series and runtime gauges; OpenMetrics
//	       with trace-id exemplars via Accept: application/openmetrics-text
//	       or ?format=openmetrics
//	GET    /debug/requests              recent decide requests, newest
//	       first: trace id, decider, outcome, timings, span tree
//	GET    /debug/plans                 top-K slowest plans across
//	       resident problems (?k=, default 10), with per-node timings
//
// Every request runs under a request-scoped trace: a client-sent W3C
// traceparent header is adopted (and echoed back), otherwise fresh ids
// are minted. All operational output is structured JSON on stderr via
// log/slog — an access-log line per request, a decision-log line per
// decide (trace_id, problem, decider, verdict, outcome, queue-wait and
// wall times), warn lines on registry eviction and admission overflow,
// and the -slowlog flight-recorder dumps tagged with the trace id.
//
// Status mapping: an expired per-request deadline answers 408 with the
// DeadlineError detail (op, elapsed, progress snapshot); an exhausted
// search budget answers 422 with the BudgetError detail; a full
// admission queue answers 429 with Retry-After. The verdict in all
// three cases is unknown — never a fabricated "no".
//
// With -data-dir the registry is crash-safe: every PUT/DELETE is
// committed to a checksummed write-ahead log (fsync before the ack)
// and folded into an atomic snapshot every -snapshot-every plus once
// at drain; on boot the snapshot and the WAL's longest valid prefix
// are replayed, discarding any torn tail with a warning. A PUT the
// WAL refuses answers 503 storage and mutates nothing.
//
// Per-problem isolation (off by default): -tenant-rate arms a token
// bucket per problem (429 rate_limited past it) and -breaker-threshold
// arms a circuit breaker that answers 503 breaker_open after that many
// consecutive server-side decide failures on one problem, probing
// again after -breaker-cooldown. -queue-target sheds decide requests
// 429 whenever the median admission-queue wait exceeds it, with
// Retry-After computed from live queue depth and drain rate.
//
// On SIGTERM/SIGINT the daemon stops accepting connections, turns
// /healthz 503, finishes in-flight decisions within -drain-timeout and
// exits 0 on a clean drain (1 when the deadline cut requests short).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"relcomplete/internal/durable"
	"relcomplete/internal/httpx"
	"relcomplete/internal/obs"
	"relcomplete/internal/relation"
	"relcomplete/internal/server"
)

func main() {
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	if err := run(os.Args[1:], os.Stderr, sigs, nil); err != nil {
		fmt.Fprintln(os.Stderr, "rcserved:", err)
		os.Exit(1)
	}
}

// run starts the daemon and blocks until a signal arrives, then drains.
// ready, when non-nil, receives the bound address once the server is
// listening (tests use it instead of scraping stderr).
func run(args []string, stderr io.Writer, sigs <-chan os.Signal, ready chan<- string) error {
	fs := flag.NewFlagSet("rcserved", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8080", "listen address for the API and /metrics")
	workers := fs.Int("workers", 0, "Options.Parallelism for loaded problems (0 = GOMAXPROCS)")
	maxConcurrent := fs.Int("max-concurrent", 4, "decide calls running at once (admission concurrency cap)")
	maxQueue := fs.Int("max-queue", 64, "decide calls waiting for a slot before 429s (bounded queue depth)")
	maxResidentMB := fs.Int64("max-resident-mb", 256, "registry resident-bytes cap in MiB (LRU eviction; -1 = unlimited)")
	defaultTimeout := fs.Duration("default-timeout", 30*time.Second, "decide deadline when the request sets no timeout_ms")
	maxTimeout := fs.Duration("max-timeout", 5*time.Minute, "upper bound on a request's timeout_ms")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "SIGTERM: how long in-flight decisions may run before hard close")
	boxed := fs.Bool("boxed", false, "ablation: boxed (non-interned) relation storage for loaded problems")
	slowlog := fs.Duration("slowlog", 0, "dump the flight recorder to stderr when one decider call exceeds this (0 = off)")
	traceExport := fs.String("trace-export", "", "export finished request spans: a file path gets one JSON span per line, an http(s):// URL POSTs OTLP/HTTP JSON")
	dataDir := fs.String("data-dir", "", "durable registry state: write-ahead log + snapshots in this directory, replayed on boot (empty = in-memory only)")
	snapshotEvery := fs.Duration("snapshot-every", 5*time.Minute, "how often to fold the WAL into a registry snapshot (with -data-dir; 0 = only at drain)")
	maxBodyMB := fs.Int64("max-body-mb", 32, "cap on one PUT or decide request body in MiB")
	queueTarget := fs.Duration("queue-target", 500*time.Millisecond, "shed decide requests 429 while the median queue wait exceeds this (0 = hard cap only)")
	tenantRate := fs.Float64("tenant-rate", 0, "per-problem sustained decide rate limit in requests/second (0 = off)")
	tenantBurst := fs.Float64("tenant-burst", 0, "per-problem burst allowance on top of -tenant-rate (0 = max(1, rate))")
	breakerThreshold := fs.Int("breaker-threshold", 0, "consecutive server-side decide failures that open a problem's circuit breaker (0 = off)")
	breakerCooldown := fs.Duration("breaker-cooldown", 5*time.Second, "how long an open circuit breaker waits before a half-open probe")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments %q", fs.Args())
	}

	// All operational output is structured JSON on stderr: access and
	// decision logs, eviction/overload warnings, lifecycle messages.
	logger := slog.New(slog.NewJSONHandler(stderr, nil))
	metrics := obs.NewMetrics()
	relation.SetMetrics(metrics)     // index counters live behind a process-global hook
	relation.SetDefaultBoxed(*boxed) // storage ablation, set before any document builds
	maxResident := *maxResidentMB
	if maxResident > 0 {
		maxResident <<= 20
	}
	// The span export pipeline is optional: finished request traces go
	// to a JSONL file or an OTLP/HTTP collector on a background worker,
	// never blocking a decide. Closed after the drain so in-flight
	// request spans still flush.
	var exporter *obs.SpanExporter
	if *traceExport != "" {
		var sink obs.SpanSink
		if strings.HasPrefix(*traceExport, "http://") || strings.HasPrefix(*traceExport, "https://") {
			sink = obs.NewOTLPSink(*traceExport, "rcserved", nil)
		} else {
			s, err := obs.OpenJSONLFile(*traceExport)
			if err != nil {
				return fmt.Errorf("trace-export: %w", err)
			}
			sink = s
		}
		exporter = obs.NewSpanExporter(sink, obs.ExporterConfig{})
		defer exporter.Close()
	}

	// Durable registry: open (creating) the data dir, run recovery, and
	// replay the recovered mutations into the registry before the
	// listener comes up — /readyz stays 503 until the replay completes.
	var dlog *durable.Log
	var recovered []durable.Record
	if *dataDir != "" {
		var err error
		dlog, recovered, err = durable.Open(*dataDir, durable.Options{
			Logger:  logger,
			Metrics: metrics,
		})
		if err != nil {
			return fmt.Errorf("data-dir: %w", err)
		}
		defer dlog.Close()
	}

	svc := server.New(server.Config{
		Workers:          *workers,
		MaxConcurrent:    *maxConcurrent,
		MaxQueue:         *maxQueue,
		MaxResidentBytes: maxResident,
		MaxBodyBytes:     *maxBodyMB << 20,
		DefaultTimeout:   *defaultTimeout,
		MaxTimeout:       *maxTimeout,
		Metrics:          metrics,
		Logger:           logger,
		SlowOpThreshold:  *slowlog,
		SlowOpSink:       stderr,
		TraceExporter:    exporter,
		Durable:          dlog,
		QueueTarget:      *queueTarget,
		Tenant: server.TenantLimits{
			Rate:             *tenantRate,
			Burst:            *tenantBurst,
			BreakerThreshold: *breakerThreshold,
			BreakerCooldown:  *breakerCooldown,
		},
	})
	if dlog != nil {
		applied, skipped := svc.Restore(recovered)
		logger.LogAttrs(context.Background(), slog.LevelInfo, "rcserved: recovery replay complete",
			slog.String("data_dir", dlog.Dir()),
			slog.Int("records", len(recovered)),
			slog.Int("applied", applied),
			slog.Int("skipped", skipped),
			slog.Int("problems", svc.Registry().Len()))
	}

	mux := http.NewServeMux()
	mux.Handle("/", svc)
	httpx.PublishSnapshot("solver", metrics)
	httpx.RegisterDebug(mux, metrics) // /metrics, /debug/vars, /debug/pprof

	// The access-log middleware owns the request root span: it ingests
	// the client's traceparent, stamps the response header, writes one
	// JSON line per request — for /v1 and debug routes alike — and, when
	// -trace-export is set, hands the finished span tree to the exporter.
	srv, err := httpx.Serve(*addr, httpx.AccessLogExport(logger, exporter, mux))
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	bound := srv.Addr().String()
	logger.LogAttrs(context.Background(), slog.LevelInfo, "rcserved: serving /v1",
		slog.String("addr", bound))
	if ready != nil {
		ready <- bound
	}

	// Periodic snapshots bound recovery-replay time: the WAL is folded
	// into snapshot.json every -snapshot-every (and once more after the
	// drain, so a clean shutdown restarts from a snapshot alone).
	snapDone := make(chan struct{})
	snapStopped := make(chan struct{})
	go func() {
		defer close(snapStopped)
		if dlog == nil || *snapshotEvery <= 0 {
			return
		}
		t := time.NewTicker(*snapshotEvery)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				if err := svc.SnapshotNow(); err != nil {
					logger.LogAttrs(context.Background(), slog.LevelWarn,
						"rcserved: periodic snapshot failed",
						slog.String("error", err.Error()))
				}
			case <-snapDone:
				return
			}
		}
	}()

	sig := <-sigs
	logger.LogAttrs(context.Background(), slog.LevelInfo, "rcserved: draining",
		slog.String("signal", sig.String()),
		slog.Duration("deadline", *drainTimeout))
	svc.StartDrain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	close(snapDone)
	<-snapStopped
	if dlog != nil {
		// Final snapshot after the drain: every mutation the daemon
		// acknowledged is in the snapshot, and the next boot replays no
		// WAL at all. Failure is not fatal — the WAL already holds
		// everything.
		if err := svc.SnapshotNow(); err != nil {
			logger.LogAttrs(context.Background(), slog.LevelWarn,
				"rcserved: final snapshot failed (wal remains authoritative)",
				slog.String("error", err.Error()))
		}
	}
	logger.LogAttrs(context.Background(), slog.LevelInfo, "rcserved: drained cleanly")
	return nil
}
