package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleIndexed = `goos: linux
goarch: amd64
pkg: relcomplete
cpu: Intel(R) Xeon(R)
BenchmarkConsistency3SAT/forall=1-8         	    2000	    500000 ns/op	  120000 B/op	    1500 allocs/op
BenchmarkConsistency3SAT/forall=2-8         	    1000	   1200000 ns/op	  250000 B/op	    3200 allocs/op
BenchmarkTupleKeyAppend-8                   	50000000	        22.5 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	relcomplete	3.141s
`

const sampleNaive = `BenchmarkConsistency3SAT/forall=1-8         	     200	   5000000 ns/op	 2400000 B/op	   45000 allocs/op
BenchmarkConsistency3SAT/forall=2-8         	     100	  12000000 ns/op	 5000000 B/op	   90000 allocs/op
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleIndexed))
	if err != nil {
		t.Fatal(err)
	}
	names := sortedNames(got)
	want := []string{
		"BenchmarkConsistency3SAT/forall=1",
		"BenchmarkConsistency3SAT/forall=2",
		"BenchmarkTupleKeyAppend",
	}
	if len(names) != len(want) {
		t.Fatalf("parsed %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("parsed %v, want %v", names, want)
		}
	}
	m := got["BenchmarkConsistency3SAT/forall=1"]
	if m.NsPerOp != 500000 || m.BytesPerOp != 120000 || m.AllocsPerOp != 1500 {
		t.Fatalf("bad metrics: %+v", m)
	}
	if k := got["BenchmarkTupleKeyAppend"]; k.NsPerOp != 22.5 || k.AllocsPerOp != 0 {
		t.Fatalf("bad fractional metrics: %+v", k)
	}
}

func TestTrimProcSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkX-8":            "BenchmarkX",
		"BenchmarkX/n=3-16":       "BenchmarkX/n=3",
		"BenchmarkX/rows=2":       "BenchmarkX/rows=2",
		"BenchmarkX/forall=1-8-8": "BenchmarkX/forall=1-8",
	}
	for in, want := range cases {
		if got := trimProcSuffix(in); got != want {
			t.Errorf("trimProcSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRunMergesAndComputesSpeedup(t *testing.T) {
	dir := t.TempDir()
	idx := filepath.Join(dir, "indexed.txt")
	nv := filepath.Join(dir, "naive.txt")
	out := filepath.Join(dir, "BENCH_eval.json")
	if err := os.WriteFile(idx, []byte(sampleIndexed), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(nv, []byte(sampleNaive), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-o", out, "indexed=" + idx, "naive_join=" + nv}, nil); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	e := rep.Benchmarks["BenchmarkConsistency3SAT/forall=1"]
	if e == nil || e.Runs["indexed"] == nil || e.Runs["naive_join"] == nil {
		t.Fatalf("missing merged entry: %+v", rep.Benchmarks)
	}
	if e.Speedup != 10 {
		t.Fatalf("speedup = %v, want 10", e.Speedup)
	}
	// The key-encoder benchmark has no naive run: no speedup reported.
	if k := rep.Benchmarks["BenchmarkTupleKeyAppend"]; k.Speedup != 0 {
		t.Fatalf("unexpected speedup on single-run benchmark: %v", k.Speedup)
	}
}

func TestRunRejectsBadArgs(t *testing.T) {
	if err := run([]string{"no-equals-sign"}, nil); err == nil {
		t.Fatal("label without file must error")
	}
	if err := run(nil, nil); err == nil {
		t.Fatal("no args must error")
	}
}
