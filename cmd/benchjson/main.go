// Command benchjson converts `go test -bench -benchmem` output into the
// committed benchmark-trajectory artifact BENCH_eval.json: ns/op,
// B/op and allocs/op per benchmark, for one or more labelled runs of
// the same suite. When both an "indexed" and a "naive_join" run are
// given, each benchmark additionally reports the speedup of the
// compiled indexed-join engine over the nested-loop baseline; an
// "indexed" plus "boxed" pair likewise reports the interned-storage
// speedup over the boxed oracle representation.
//
// Usage:
//
//	go test -run xxx -bench . -benchmem . > indexed.txt
//	RELCOMPLETE_NAIVEJOIN=1 go test -run xxx -bench . -benchmem . > naive.txt
//	RELCOMPLETE_BOXED=1 go test -run xxx -bench . -benchmem . > boxed.txt
//	go run ./cmd/benchjson -o BENCH_eval.json indexed=indexed.txt naive_join=naive.txt boxed=boxed.txt
//
// With -warn OLD.json the freshly parsed runs are additionally compared
// against a committed trajectory artifact: any benchmark whose ns/op or
// allocs/op regressed by more than 10% against the same label in the
// old artifact prints a warning line. The comparison never fails the
// command — absolute numbers are machine-specific, so the step is
// advisory (warn-only) by design.
//
// Absolute numbers are machine-specific; the artifact's claim is the
// trajectory — the ratios between labelled runs and between commits.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// metrics is one benchmark measurement.
type metrics struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// entry groups the labelled runs of one benchmark.
type entry struct {
	Runs map[string]*metrics `json:"runs"`
	// Speedup is naive_join ns/op over indexed ns/op, when both runs
	// are present.
	Speedup float64 `json:"speedup_naive_over_indexed,omitempty"`
	// SpeedupBoxed is boxed ns/op over indexed ns/op — the interned
	// storage layer's win over the boxed oracle — when both runs are
	// present.
	SpeedupBoxed float64 `json:"speedup_boxed_over_interned,omitempty"`
}

type report struct {
	Format     string            `json:"format"`
	Note       string            `json:"note"`
	Benchmarks map[string]*entry `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	out := fs.String("o", "", "output file (default stdout)")
	warnAgainst := fs.String("warn", "", "committed trajectory artifact to compare against; >10% ns/op or allocs/op regressions print warnings (never fails)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("usage: benchjson [-o out.json] label=benchoutput.txt ...")
	}
	rep := &report{
		Format:     "relcomplete-bench-trajectory-v1",
		Note:       "ns/op, B/op, allocs/op per benchmark and labelled run; absolute numbers are machine-specific, ratios are the artifact",
		Benchmarks: map[string]*entry{},
	}
	for _, arg := range fs.Args() {
		label, file, ok := strings.Cut(arg, "=")
		if !ok {
			return fmt.Errorf("argument %q is not label=file", arg)
		}
		f, err := os.Open(file)
		if err != nil {
			return err
		}
		parsed, err := parseBench(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", file, err)
		}
		if len(parsed) == 0 {
			return fmt.Errorf("%s: no benchmark lines found", file)
		}
		for name, m := range parsed {
			e := rep.Benchmarks[name]
			if e == nil {
				e = &entry{Runs: map[string]*metrics{}}
				rep.Benchmarks[name] = e
			}
			e.Runs[label] = m
		}
	}
	for _, e := range rep.Benchmarks {
		idx, naive := e.Runs["indexed"], e.Runs["naive_join"]
		if idx != nil && naive != nil && idx.NsPerOp > 0 {
			e.Speedup = math.Round(naive.NsPerOp/idx.NsPerOp*100) / 100
		}
		if boxed := e.Runs["boxed"]; idx != nil && boxed != nil && idx.NsPerOp > 0 {
			e.SpeedupBoxed = math.Round(boxed.NsPerOp/idx.NsPerOp*100) / 100
		}
	}
	if *warnAgainst != "" {
		if err := warnRegressions(stdout, *warnAgainst, rep); err != nil {
			return err
		}
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if *out == "" {
		_, err = stdout.Write(buf)
		return err
	}
	return os.WriteFile(*out, buf, 0o644)
}

// regressionThreshold is the advisory regression bar: fresh runs more
// than 10% worse than the committed artifact are flagged.
const regressionThreshold = 1.10

// warnRegressions compares rep against the committed artifact at path
// and prints one warning line per (benchmark, label, metric) whose
// ns/op or allocs/op regressed past the threshold. Missing benchmarks
// or labels are skipped silently — the step is advisory, and suites
// grow. Only a malformed artifact is an error.
func warnRegressions(w io.Writer, path string, rep *report) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var old report
	if err := json.Unmarshal(raw, &old); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	names := make([]string, 0, len(rep.Benchmarks))
	for name := range rep.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	warned := 0
	for _, name := range names {
		oldE := old.Benchmarks[name]
		if oldE == nil {
			continue
		}
		newE := rep.Benchmarks[name]
		labels := make([]string, 0, len(newE.Runs))
		for label := range newE.Runs {
			labels = append(labels, label)
		}
		sort.Strings(labels)
		for _, label := range labels {
			oldM, newM := oldE.Runs[label], newE.Runs[label]
			if oldM == nil {
				continue
			}
			if oldM.NsPerOp > 0 && newM.NsPerOp > oldM.NsPerOp*regressionThreshold {
				fmt.Fprintf(w, "warn: %s [%s] ns/op regressed %.1f%%: %.0f -> %.0f\n",
					name, label, (newM.NsPerOp/oldM.NsPerOp-1)*100, oldM.NsPerOp, newM.NsPerOp)
				warned++
			}
			if oldM.AllocsPerOp > 0 && newM.AllocsPerOp > oldM.AllocsPerOp*regressionThreshold {
				fmt.Fprintf(w, "warn: %s [%s] allocs/op regressed %.1f%%: %.0f -> %.0f\n",
					name, label, (newM.AllocsPerOp/oldM.AllocsPerOp-1)*100, oldM.AllocsPerOp, newM.AllocsPerOp)
				warned++
			}
		}
	}
	if warned == 0 {
		fmt.Fprintf(w, "benchjson: no >%.0f%% regressions against %s\n", (regressionThreshold-1)*100, path)
	}
	return nil
}

// parseBench extracts benchmark results from `go test -bench` output.
// The trailing -N GOMAXPROCS suffix is stripped from names so runs from
// different machines merge onto the same key.
func parseBench(r io.Reader) (map[string]*metrics, error) {
	out := map[string]*metrics{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := trimProcSuffix(fields[0])
		m := &metrics{}
		// fields[1] is the iteration count; after it come value/unit
		// pairs: 123.4 ns/op, 56 B/op, 7 allocs/op.
		seen := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchmark %s: bad value %q", name, fields[i])
			}
			switch fields[i+1] {
			case "ns/op":
				m.NsPerOp = v
				seen = true
			case "B/op":
				m.BytesPerOp = v
			case "allocs/op":
				m.AllocsPerOp = v
			}
		}
		if seen {
			out[name] = m
		}
	}
	return out, sc.Err()
}

// trimProcSuffix removes the -N GOMAXPROCS suffix go test appends.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// sortedNames is used by the tests to assert deterministic content.
func sortedNames(m map[string]*metrics) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
