// Command benchjson converts `go test -bench -benchmem` output into the
// committed benchmark-trajectory artifact BENCH_eval.json: ns/op,
// B/op and allocs/op per benchmark, for one or more labelled runs of
// the same suite. When both an "indexed" and a "naive_join" run are
// given, each benchmark additionally reports the speedup of the
// compiled indexed-join engine over the nested-loop baseline.
//
// Usage:
//
//	go test -run xxx -bench . -benchmem . > indexed.txt
//	RELCOMPLETE_NAIVEJOIN=1 go test -run xxx -bench . -benchmem . > naive.txt
//	go run ./cmd/benchjson -o BENCH_eval.json indexed=indexed.txt naive_join=naive.txt
//
// Absolute numbers are machine-specific; the artifact's claim is the
// trajectory — the ratios between labelled runs and between commits.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// metrics is one benchmark measurement.
type metrics struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// entry groups the labelled runs of one benchmark.
type entry struct {
	Runs map[string]*metrics `json:"runs"`
	// Speedup is naive_join ns/op over indexed ns/op, when both runs
	// are present.
	Speedup float64 `json:"speedup_naive_over_indexed,omitempty"`
}

type report struct {
	Format     string            `json:"format"`
	Note       string            `json:"note"`
	Benchmarks map[string]*entry `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("usage: benchjson [-o out.json] label=benchoutput.txt ...")
	}
	rep := &report{
		Format:     "relcomplete-bench-trajectory-v1",
		Note:       "ns/op, B/op, allocs/op per benchmark and labelled run; absolute numbers are machine-specific, ratios are the artifact",
		Benchmarks: map[string]*entry{},
	}
	for _, arg := range fs.Args() {
		label, file, ok := strings.Cut(arg, "=")
		if !ok {
			return fmt.Errorf("argument %q is not label=file", arg)
		}
		f, err := os.Open(file)
		if err != nil {
			return err
		}
		parsed, err := parseBench(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", file, err)
		}
		if len(parsed) == 0 {
			return fmt.Errorf("%s: no benchmark lines found", file)
		}
		for name, m := range parsed {
			e := rep.Benchmarks[name]
			if e == nil {
				e = &entry{Runs: map[string]*metrics{}}
				rep.Benchmarks[name] = e
			}
			e.Runs[label] = m
		}
	}
	for _, e := range rep.Benchmarks {
		idx, naive := e.Runs["indexed"], e.Runs["naive_join"]
		if idx != nil && naive != nil && idx.NsPerOp > 0 {
			e.Speedup = math.Round(naive.NsPerOp/idx.NsPerOp*100) / 100
		}
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if *out == "" {
		_, err = stdout.Write(buf)
		return err
	}
	return os.WriteFile(*out, buf, 0o644)
}

// parseBench extracts benchmark results from `go test -bench` output.
// The trailing -N GOMAXPROCS suffix is stripped from names so runs from
// different machines merge onto the same key.
func parseBench(r io.Reader) (map[string]*metrics, error) {
	out := map[string]*metrics{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := trimProcSuffix(fields[0])
		m := &metrics{}
		// fields[1] is the iteration count; after it come value/unit
		// pairs: 123.4 ns/op, 56 B/op, 7 allocs/op.
		seen := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchmark %s: bad value %q", name, fields[i])
			}
			switch fields[i+1] {
			case "ns/op":
				m.NsPerOp = v
				seen = true
			case "B/op":
				m.BytesPerOp = v
			case "allocs/op":
				m.AllocsPerOp = v
			}
		}
		if seen {
			out[name] = m
		}
	}
	return out, sc.Err()
}

// trimProcSuffix removes the -N GOMAXPROCS suffix go test appends.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// sortedNames is used by the tests to assert deterministic content.
func sortedNames(m map[string]*metrics) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
