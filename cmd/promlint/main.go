// Command promlint validates a Prometheus text-exposition document
// (file argument or stdin with "-") against the in-repo grammar
// checker, obs.ValidatePrometheusText. CI's server-smoke job pipes the
// live /metrics scrape through it so an exposition regression fails
// the round-trip, not a downstream scraper.
//
// Usage:
//
//	promlint metrics.prom
//	curl -s localhost:8080/metrics | promlint -
//
// Exit codes: 0 valid, 1 invalid or unreadable.
package main

import (
	"fmt"
	"io"
	"os"

	"relcomplete/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdin); err != nil {
		fmt.Fprintln(os.Stderr, "promlint:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader) error {
	if len(args) != 1 {
		return fmt.Errorf("expected exactly one input file (or - for stdin)")
	}
	var data []byte
	var err error
	if args[0] == "-" {
		data, err = io.ReadAll(stdin)
	} else {
		data, err = os.ReadFile(args[0])
	}
	if err != nil {
		return err
	}
	return obs.ValidatePrometheusText(data)
}
