// Command promlint validates a metrics text-exposition document (file
// argument or stdin with "-") against the in-repo grammar checkers,
// obs.ValidatePrometheusText and obs.ValidateOpenMetricsText. CI's
// server-smoke job pipes the live /metrics scrape through it so an
// exposition regression fails the round-trip, not a downstream scraper.
//
// The format is auto-detected: a document containing a "# EOF" line is
// checked as OpenMetrics (exemplars allowed, EOF terminator required),
// anything else as Prometheus text. -format prometheus|openmetrics
// forces one grammar — use it to assert a server really produced the
// negotiated format rather than whichever one happens to parse.
//
// Usage:
//
//	promlint metrics.prom
//	curl -s localhost:8080/metrics | promlint -
//	curl -s -H 'Accept: application/openmetrics-text' localhost:8080/metrics |
//	    promlint -format openmetrics -
//
// Exit codes: 0 valid, 1 invalid or unreadable.
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"

	"relcomplete/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdin); err != nil {
		fmt.Fprintln(os.Stderr, "promlint:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader) error {
	fs := flag.NewFlagSet("promlint", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	format := fs.String("format", "auto", "exposition grammar: auto | prometheus | openmetrics")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("expected exactly one input file (or - for stdin)")
	}
	var data []byte
	var err error
	if fs.Arg(0) == "-" {
		data, err = io.ReadAll(stdin)
	} else {
		data, err = os.ReadFile(fs.Arg(0))
	}
	if err != nil {
		return err
	}
	switch *format {
	case "prometheus":
		return obs.ValidatePrometheusText(data)
	case "openmetrics":
		return obs.ValidateOpenMetricsText(data)
	case "auto":
		if isOpenMetrics(data) {
			return obs.ValidateOpenMetricsText(data)
		}
		return obs.ValidatePrometheusText(data)
	}
	return fmt.Errorf("unknown -format %q", *format)
}

// isOpenMetrics reports whether the document carries the OpenMetrics
// "# EOF" terminator on its own line — the one syntactic marker the
// Prometheus text format never produces.
func isOpenMetrics(data []byte) bool {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		if bytes.Equal(bytes.TrimRight(sc.Bytes(), " \t\r"), []byte("# EOF")) {
			return true
		}
	}
	return false
}
