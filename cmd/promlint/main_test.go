package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"relcomplete/internal/obs"
)

func TestValidDocument(t *testing.T) {
	m := obs.NewMetrics()
	m.Inc(obs.ModelsChecked)
	m.Observe(obs.DeciderWallNs, 1e6)
	path := filepath.Join(t.TempDir(), "metrics.prom")
	if err := os.WriteFile(path, []byte(m.PrometheusText()), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{path}, nil); err != nil {
		t.Fatalf("valid exposition rejected: %v", err)
	}
}

func TestInvalidDocument(t *testing.T) {
	if err := run([]string{"-"}, strings.NewReader("this is{not metrics\n")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestStdin(t *testing.T) {
	m := obs.NewMetrics()
	if err := run([]string{"-"}, strings.NewReader(m.PrometheusText())); err != nil {
		t.Fatalf("stdin path: %v", err)
	}
}

func TestBadArgs(t *testing.T) {
	if err := run(nil, nil); err == nil {
		t.Fatal("missing argument accepted")
	}
	if err := run([]string{"/nonexistent/metrics.prom"}, nil); err == nil {
		t.Fatal("unreadable file accepted")
	}
}
