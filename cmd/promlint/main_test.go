package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"relcomplete/internal/obs"
)

func TestValidDocument(t *testing.T) {
	m := obs.NewMetrics()
	m.Inc(obs.ModelsChecked)
	m.Observe(obs.DeciderWallNs, 1e6)
	path := filepath.Join(t.TempDir(), "metrics.prom")
	if err := os.WriteFile(path, []byte(m.PrometheusText()), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{path}, nil); err != nil {
		t.Fatalf("valid exposition rejected: %v", err)
	}
}

func TestInvalidDocument(t *testing.T) {
	if err := run([]string{"-"}, strings.NewReader("this is{not metrics\n")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestStdin(t *testing.T) {
	m := obs.NewMetrics()
	if err := run([]string{"-"}, strings.NewReader(m.PrometheusText())); err != nil {
		t.Fatalf("stdin path: %v", err)
	}
}

func TestBadArgs(t *testing.T) {
	if err := run(nil, nil); err == nil {
		t.Fatal("missing argument accepted")
	}
	if err := run([]string{"/nonexistent/metrics.prom"}, nil); err == nil {
		t.Fatal("unreadable file accepted")
	}
}

// A document with labelled per-tenant series — the rcserved shape the
// CI smoke job pipes through promlint — must pass, and the labelled
// failure modes (duplicate labels, a per-label-set histogram broken in
// one set only) must fail.
func TestLabelledDocument(t *testing.T) {
	m := obs.NewMetrics()
	cv := m.LabeledCounter(obs.ServerDecides, "problem", "decider", "outcome")
	cv.Inc("orders", "rcdp_strong", "ok")
	cv.Inc("orders", "rcdp_strong", "deadline")
	m.LabeledHisto(obs.DeciderWallNs, "problem").Observe(1e6, "orders")
	if err := run([]string{"-"}, strings.NewReader(m.PrometheusText())); err != nil {
		t.Fatalf("labelled exposition rejected: %v", err)
	}

	if err := run([]string{"-"}, strings.NewReader(`x{a="1",a="2"} 1`+"\n")); err == nil {
		t.Fatal("duplicate label accepted")
	}
	broken := strings.Join([]string{
		"# TYPE h histogram",
		`h_bucket{tenant="a",le="+Inf"} 1`,
		`h_count{tenant="a"} 1`,
		`h_bucket{tenant="b",le="+Inf"} 2`,
		`h_count{tenant="b"} 5`, // count != +Inf bucket, in set b only
		"",
	}, "\n")
	if err := run([]string{"-"}, strings.NewReader(broken)); err == nil {
		t.Fatal("per-label-set count mismatch accepted")
	}
}

// The OpenMetrics exposition (exemplars, _total samples, # EOF) is
// auto-detected by the EOF terminator and checkable explicitly via
// -format; forcing the wrong grammar must fail.
func TestOpenMetricsDocument(t *testing.T) {
	m := obs.NewMetrics()
	m.Inc(obs.ModelsChecked)
	m.ObserveExemplar(obs.DeciderWallNs, 1e6, "aaaabbbbccccddddaaaabbbbccccdddd")
	om := m.OpenMetricsText()

	if err := run([]string{"-"}, strings.NewReader(om)); err != nil {
		t.Fatalf("auto-detection rejected OpenMetrics: %v", err)
	}
	if err := run([]string{"-format", "openmetrics", "-"}, strings.NewReader(om)); err != nil {
		t.Fatalf("-format openmetrics rejected own exposition: %v", err)
	}
	// The classic grammar has no exemplars and no # EOF: forcing it on
	// an OpenMetrics document must fail, and vice versa.
	if err := run([]string{"-format", "prometheus", "-"}, strings.NewReader(om)); err == nil {
		t.Fatal("-format prometheus accepted an OpenMetrics document")
	}
	if err := run([]string{"-format", "openmetrics", "-"}, strings.NewReader(m.PrometheusText())); err == nil {
		t.Fatal("-format openmetrics accepted a document without # EOF")
	}
	if err := run([]string{"-format", "martian", "-"}, strings.NewReader(om)); err == nil {
		t.Fatal("unknown -format accepted")
	}
}
