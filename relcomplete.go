// Package relcomplete is a Go implementation of
//
//	Ting Deng, Wenfei Fan, Floris Geerts.
//	"Capturing Missing Tuples and Missing Values."
//	PODS 2010 (extended version: ACM TODS 41(2), 2016).
//
// It decides relative information completeness for partially closed
// databases represented as conditional tables (c-instances) bounded by
// master data through containment constraints. The facade re-exports
// the user-facing API of the internal packages:
//
//   - relation — schemas, tuples, instances, databases;
//   - query    — CQ/UCQ/∃FO+/FO queries and FP programs, with a text
//     syntax (ParseQuery, ParseProgram);
//   - cc       — containment constraints, FDs, INDs, denial constraints;
//   - ctable   — conditional tables and c-instances;
//   - core     — the deciders: consistency, extensibility, RCDP, RCQP
//     and MINP in the strong, weak and viable completeness models;
//   - tractable — the PTIME special cases of Section 7.
//
// See README.md for a walkthrough and DESIGN.md for the mapping from
// the paper's definitions and theorems to this code base.
package relcomplete

import (
	"context"
	"io"

	"relcomplete/internal/cc"
	"relcomplete/internal/core"
	"relcomplete/internal/ctable"
	"relcomplete/internal/obs"
	"relcomplete/internal/query"
	"relcomplete/internal/relation"
)

// Relational substrate.
type (
	// Value is a constant of some attribute domain.
	Value = relation.Value
	// Tuple is a row of constants.
	Tuple = relation.Tuple
	// Domain is a finite or infinite attribute domain.
	Domain = relation.Domain
	// Attribute is a named column with a domain.
	Attribute = relation.Attribute
	// Schema is a relation schema.
	Schema = relation.Schema
	// DBSchema is a database schema (a list of relation schemas).
	DBSchema = relation.DBSchema
	// Instance is a set-semantics instance of one relation.
	Instance = relation.Instance
	// Database is a ground instance of a database schema.
	Database = relation.Database
)

// Queries.
type (
	// Query is a relational-calculus query (CQ, UCQ, ∃FO+ or FO).
	Query = query.Query
	// Program is an FP program (datalog with inflational fixpoint).
	Program = query.Program
	// Term is a variable or constant inside a query or c-table row.
	Term = query.Term
)

// Constraints and c-tables.
type (
	// Constraint is one containment constraint q(R) ⊆ p(Rm).
	Constraint = cc.Constraint
	// ConstraintSet is the paper's V.
	ConstraintSet = cc.Set
	// FD is a functional dependency.
	FD = cc.FD
	// IND is an inclusion dependency.
	IND = cc.IND
	// CTable is a conditional table (T, ξ).
	CTable = ctable.CTable
	// CInstance is a c-instance (one c-table per relation).
	CInstance = ctable.CInstance
	// Row is one c-table row with its local condition.
	Row = ctable.Row
	// Condition is a conjunction of =/≠ atoms over row variables.
	Condition = ctable.Condition
	// Valuation maps c-table variables to constants.
	Valuation = ctable.Valuation
)

// Deciders.
type (
	// Problem bundles schema, query, master data and CCs.
	Problem = core.Problem
	// Qry wraps a calculus query or an FP program.
	Qry = core.Qry
	// Model selects the strong, weak or viable completeness model.
	Model = core.Model
	// Lang is the query-language parameter LQ.
	Lang = core.Lang
	// Options tunes the deciders' budgets.
	Options = core.Options
	// Counterexample witnesses relative incompleteness.
	Counterexample = core.Counterexample
)

// Observability (see DESIGN.md §5.9).
type (
	// Metrics collects solver counters and phase timings; set it as
	// Options.Obs. A nil *Metrics disables collection.
	Metrics = obs.Metrics
	// Stats is a JSON-ready snapshot of a Metrics instance.
	Stats = obs.Stats
	// Tracer streams structured decision-trace events; set it as
	// Options.Trace. A nil *Tracer disables tracing.
	Tracer = obs.Tracer
	// HistogramStat is one latency/size histogram in a Stats snapshot.
	HistogramStat = obs.HistogramStat
	// RingSink is the bounded overwrite-oldest flight recorder; set it
	// as Options.FlightRecorder (fed by a NewFlightTracer) to retain
	// the last N decision events for slow-op dumps.
	RingSink = obs.RingSink
	// BudgetError carries the cap detail (option name, limit, consumed)
	// of an exhausted search budget; it unwraps to ErrBudget or
	// ErrInconclusive, so errors.Is checks keep working.
	BudgetError = core.BudgetError
	// DeadlineError reports a decider cut short by its context, with the
	// operation name, elapsed time, a Progress snapshot and a partial
	// result where the search semantics permit one; it unwraps to
	// ErrDeadline and the context cause (see DESIGN.md §5.10).
	DeadlineError = core.DeadlineError
	// Progress is the work snapshot a DeadlineError carries.
	Progress = core.Progress
	// Span is one operation of a request-scoped trace; carry it on a
	// context (ContextWithSpan) and the deciders hang their phase spans
	// off it. A nil *Span is inert.
	Span = obs.Span
	// SpanRecorder collects the finished spans of one trace.
	SpanRecorder = obs.SpanRecorder
	// SpanData is one finished span, JSON-ready.
	SpanData = obs.SpanData
)

// NewSpanRecorder returns a bounded recorder for one request trace
// (n <= 0 uses the package default cap). Start the trace with Root,
// carry the root span via ContextWithSpan, and pass that context to
// the *Ctx deciders to collect a span tree with per-phase timings.
func NewSpanRecorder(n int) *SpanRecorder { return obs.NewSpanRecorder(n) }

// ContextWithSpan returns ctx carrying sp as the active trace span.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	return obs.ContextWithSpan(ctx, sp)
}

// SpanFromContext returns ctx's active trace span, or nil.
func SpanFromContext(ctx context.Context) *Span { return obs.SpanFromContext(ctx) }

// NewMetrics returns an empty metrics instance for Options.Obs.
func NewMetrics() *Metrics { return obs.NewMetrics() }

// NewTextTracer returns a tracer for Options.Trace rendering each
// decision event as one indented text line on w.
func NewTextTracer(w io.Writer) *Tracer { return obs.NewTracer(obs.NewTextSink(w)) }

// NewRingSink returns a flight-recorder ring retaining the last n
// events (n <= 0 uses the package default).
func NewRingSink(n int) *RingSink { return obs.NewRingSink(n) }

// NewFlightTracer returns a non-verbose tracer for Options.Trace that
// feeds the always-on flight recorder: events reach sink (typically a
// *RingSink), but the diagnosis-only re-derivations that make verbose
// tracing expensive stay off.
func NewFlightTracer(sink obs.Sink) *Tracer { return obs.NewFlightTracer(sink) }

// The three completeness models of Section 2.2.
const (
	Strong = core.Strong
	Weak   = core.Weak
	Viable = core.Viable
)

// The query languages of the paper.
const (
	CQ      = core.CQ
	UCQ     = core.UCQ
	EFOPlus = core.EFOPlus
	FO      = core.FO
	FP      = core.FP
)

// Sentinel errors of the decision API.
var (
	// ErrUndecidable marks a combination Table I proves undecidable.
	ErrUndecidable = core.ErrUndecidable
	// ErrOpen marks the paper's open problem (RCQPw, FO, c-instances).
	ErrOpen = core.ErrOpen
	// ErrInconsistent reports an empty Mod(T, Dm, V).
	ErrInconsistent = core.ErrInconsistent
	// ErrBudget reports an exhausted search budget.
	ErrBudget = core.ErrBudget
	// ErrInconclusive reports an exhausted RCQP witness bound.
	ErrInconclusive = core.ErrInconclusive
	// ErrDeadline reports a context deadline or cancellation that cut a
	// decision short; every DeadlineError unwraps to it.
	ErrDeadline = core.ErrDeadline
)

// NewProblem validates and builds a decision-problem context from a
// data schema, a query, master data (nil for a fully open world) and a
// CC set (nil for none).
func NewProblem(schema *DBSchema, q Qry, master *Database, ccs *ConstraintSet, opts Options) (*Problem, error) {
	return core.NewProblem(schema, q, master, ccs, opts)
}

// CalcQuery wraps a relational-calculus query for NewProblem.
func CalcQuery(q *Query) Qry { return core.CalcQuery(q) }

// FPQuery wraps an FP program for NewProblem.
func FPQuery(p *Program) Qry { return core.FPQuery(p) }

// ParseQuery parses the datalog-style text syntax, e.g.
//
//	Q(x) := R(x, y) & S(y, 'lit') & x != y
func ParseQuery(src string) (*Query, error) { return query.ParseQuery(src) }

// ParseProgram parses an FP program, e.g.
//
//	reach(x, y) :- edge(x, y).
//	reach(x, z) :- reach(x, y), edge(y, z).
//	output reach.
func ParseProgram(name string, schema *DBSchema, src string) (*Program, error) {
	return query.ParseProgram(name, schema, src)
}

// ParseConstraint parses a containment constraint from the text forms
// of its two queries.
func ParseConstraint(name, left, right string) (*Constraint, error) {
	return cc.Parse(name, left, right)
}

// NewConstraintSet builds the paper's V.
func NewConstraintSet(cs ...*Constraint) *ConstraintSet { return cc.NewSet(cs...) }

// NewCInstance returns an empty c-instance of the schema.
func NewCInstance(schema *DBSchema) *CInstance { return ctable.NewCInstance(schema) }

// GroundCInstance lifts a ground database to a c-instance.
func GroundCInstance(db *Database) *CInstance { return ctable.FromDatabase(db) }

// Schema construction helpers.

// NewSchema builds a relation schema.
func NewSchema(name string, attrs ...Attribute) (*Schema, error) {
	return relation.NewSchema(name, attrs...)
}

// Attr builds an attribute; a nil domain means infinite.
func Attr(name string, dom *Domain) Attribute { return relation.Attr(name, dom) }

// FiniteDomain builds a finite domain with the given members.
func FiniteDomain(name string, values ...Value) *Domain {
	return relation.Finite(name, values...)
}

// BoolDomain is the Boolean domain {0, 1}.
func BoolDomain() *Domain { return relation.Bool() }

// NewDBSchema builds a database schema.
func NewDBSchema(rels ...*Schema) (*DBSchema, error) { return relation.NewDBSchema(rels...) }

// NewDatabase returns an empty ground database of the schema.
func NewDatabase(schema *DBSchema) *Database { return relation.NewDatabase(schema) }

// T builds a tuple from values.
func T(vals ...Value) Tuple { return relation.T(vals...) }

// V builds a variable term for c-table rows.
func V(name string) Term { return query.V(name) }

// C builds a constant term for c-table rows.
func C(v Value) Term { return query.C(v) }

// Neq builds the c-table condition atom l ≠ r.
func Neq(l, r Term) ctable.CondAtom { return ctable.CNeq(l, r) }

// Eq builds the c-table condition atom l = r.
func Eq(l, r Term) ctable.CondAtom { return ctable.CEq(l, r) }

// Cond builds a row condition from atoms.
func Cond(atoms ...ctable.CondAtom) Condition { return ctable.Cond(atoms...) }
