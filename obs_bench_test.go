package relcomplete_test

import (
	"fmt"
	"io"
	"testing"

	relcomplete "relcomplete"
	"relcomplete/internal/core"
	"relcomplete/internal/ctable"
	"relcomplete/internal/paperex"
	"relcomplete/internal/query"
	"relcomplete/internal/relation"
)

// BenchmarkObsOverhead times the same strong-RCDP decision three ways:
// uninstrumented (the default every other benchmark runs in), with the
// atomic counters attached, and with counters plus a decision trace
// rendered to io.Discard. The disabled case is the overhead contract —
// nil Obs/Trace must stay within noise of the seed (≤2%, see
// DESIGN.md §5.9); the other two cases price the opt-ins.
func BenchmarkObsOverhead(b *testing.B) {
	s := paperex.Reduced()
	ci := s.T.Clone()
	for i := 0; i < 2; i++ {
		ci.MustAddRow("MVisit", ctable.Row{Terms: []query.Term{
			query.C(relation.Value(fmt.Sprintf("999-00-%03d", i))),
			query.C(relation.Value(fmt.Sprintf("P%d", i))),
			query.C("LON"), query.C("2000"),
		}})
	}
	run := func(b *testing.B, opts core.Options) {
		p, err := s.Problem(s.Q1, opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.RCDP(ci, core.Strong); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("disabled", func(b *testing.B) {
		run(b, benchCoreOpts())
	})
	b.Run("counters", func(b *testing.B) {
		opts := benchCoreOpts()
		opts.Obs = relcomplete.NewMetrics()
		run(b, opts)
	})
	b.Run("traced", func(b *testing.B) {
		opts := benchCoreOpts()
		opts.Obs = relcomplete.NewMetrics()
		opts.Trace = relcomplete.NewTextTracer(io.Discard)
		opts.Parallelism = 1
		run(b, opts)
	})
	b.Run("ring", func(b *testing.B) {
		// The always-on configuration the CLIs ship: metrics +
		// histograms + non-verbose flight recorder.
		opts := benchCoreOpts()
		opts.Obs = relcomplete.NewMetrics()
		ring := relcomplete.NewRingSink(0)
		opts.Trace = relcomplete.NewFlightTracer(ring)
		opts.FlightRecorder = ring
		run(b, opts)
	})
}

// BenchmarkObsHistogram prices one histogram observation: an atomic
// bucket increment plus a sum add after a short linear bound scan.
func BenchmarkObsHistogram(b *testing.B) {
	m := relcomplete.NewMetrics()
	b.Run("observe", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.Observe(0, int64(i)) // Histo 0 = decider wall time
		}
	})
	b.Run("nil", func(b *testing.B) {
		var nm *relcomplete.Metrics
		for i := 0; i < b.N; i++ {
			nm.Observe(0, int64(i))
		}
	})
	b.Run("snapshot", func(b *testing.B) {
		m.Observe(0, 1)
		for i := 0; i < b.N; i++ {
			if st := m.Snapshot(); len(st.Histograms) == 0 {
				b.Fatal("missing histograms")
			}
		}
	})
}
