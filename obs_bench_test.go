package relcomplete_test

import (
	"context"
	"fmt"
	"io"
	"testing"
	"time"

	relcomplete "relcomplete"
	"relcomplete/internal/core"
	"relcomplete/internal/ctable"
	"relcomplete/internal/paperex"
	"relcomplete/internal/query"
	"relcomplete/internal/reduction"
	"relcomplete/internal/relation"
	"relcomplete/internal/workload"
)

// BenchmarkObsOverhead times the same strong-RCDP decision three ways:
// uninstrumented (the default every other benchmark runs in), with the
// atomic counters attached, and with counters plus a decision trace
// rendered to io.Discard. The disabled case is the overhead contract —
// nil Obs/Trace must stay within noise of the seed (≤2%, see
// DESIGN.md §5.9); the other two cases price the opt-ins.
func BenchmarkObsOverhead(b *testing.B) {
	s := paperex.Reduced()
	ci := s.T.Clone()
	for i := 0; i < 2; i++ {
		ci.MustAddRow("MVisit", ctable.Row{Terms: []query.Term{
			query.C(relation.Value(fmt.Sprintf("999-00-%03d", i))),
			query.C(relation.Value(fmt.Sprintf("P%d", i))),
			query.C("LON"), query.C("2000"),
		}})
	}
	run := func(b *testing.B, opts core.Options) {
		p, err := s.Problem(s.Q1, opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.RCDP(ci, core.Strong); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("disabled", func(b *testing.B) {
		run(b, benchCoreOpts())
	})
	b.Run("counters", func(b *testing.B) {
		opts := benchCoreOpts()
		opts.Obs = relcomplete.NewMetrics()
		run(b, opts)
	})
	b.Run("traced", func(b *testing.B) {
		opts := benchCoreOpts()
		opts.Obs = relcomplete.NewMetrics()
		opts.Trace = relcomplete.NewTextTracer(io.Discard)
		opts.Parallelism = 1
		run(b, opts)
	})
	b.Run("ring", func(b *testing.B) {
		// The always-on configuration the CLIs ship: metrics +
		// histograms + non-verbose flight recorder.
		opts := benchCoreOpts()
		opts.Obs = relcomplete.NewMetrics()
		ring := relcomplete.NewRingSink(0)
		opts.Trace = relcomplete.NewFlightTracer(ring)
		opts.FlightRecorder = ring
		run(b, opts)
	})
}

// BenchmarkObsHistogram prices one histogram observation: an atomic
// bucket increment plus a sum add after a short linear bound scan.
func BenchmarkObsHistogram(b *testing.B) {
	m := relcomplete.NewMetrics()
	b.Run("observe", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.Observe(0, int64(i)) // Histo 0 = decider wall time
		}
	})
	b.Run("nil", func(b *testing.B) {
		var nm *relcomplete.Metrics
		for i := 0; i < b.N; i++ {
			nm.Observe(0, int64(i))
		}
	})
	b.Run("snapshot", func(b *testing.B) {
		m.Observe(0, 1)
		for i := 0; i < b.N; i++ {
			if st := m.Snapshot(); len(st.Histograms) == 0 {
				b.Fatal("missing histograms")
			}
		}
	})
}

// BenchmarkCancellationOverhead prices the deadline plumbing the same
// way BenchmarkObsOverhead prices the metrics: the identical 3SAT
// consistency decision on the Background fast path (no Done channel,
// guard and Interrupt hook both skipped) versus under an armed
// far-future deadline (per-valuation ctx polls plus the evaluator's
// Interrupt hook, none of which ever fire). The contract is that the
// armed case stays within a few percent of background — cancellation
// support must not tax callers who never cancel.
func BenchmarkCancellationOverhead(b *testing.B) {
	q := workload.ForallExistsFamily(2, 2, 4, 2)
	newGadget := func(b *testing.B) *reduction.ConsistencyGadget {
		g, err := reduction.NewConsistencyGadget(q)
		if err != nil {
			b.Fatal(err)
		}
		g.Problem.Options.NaiveJoin = naiveJoinEnv
		g.Problem.Options.Parallelism = 1
		return g
	}
	b.Run("background", func(b *testing.B) {
		g := newGadget(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := g.ConsistencyHolds(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("armed_deadline", func(b *testing.B) {
		g := newGadget(b)
		ctx, cancel := context.WithDeadline(context.Background(),
			time.Now().Add(24*time.Hour))
		defer cancel()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := g.ConsistencyHoldsCtx(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
}
