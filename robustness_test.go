package relcomplete_test

// Cancellation-latency smoke for the deadline-aware deciders: a short
// deadline on a deliberately large instance must return promptly with
// the typed deadline error, not run the decision to completion. The
// latency bound is generous (the CI machines are shared) — the point
// is the order of magnitude: a 50ms deadline must not take seconds.

import (
	"context"
	"errors"
	"testing"
	"time"

	"relcomplete"
	"relcomplete/internal/reduction"
	"relcomplete/internal/workload"
)

// TestCancellationLatency asserts that a 50ms deadline stops a 3SAT
// weak-RCDP instance whose fault-free decision takes multiple seconds
// in well under 500ms. The deciders consult the context between
// candidate valuations AND inside each query evaluation (the
// eval.Options.Interrupt hook), so the residual latency is one rule
// derivation, not one full fixpoint.
func TestCancellationLatency(t *testing.T) {
	// Σ3-SAT family instance measured at >3s fault-free on a dev
	// machine; the 50ms deadline fires long before the verdict.
	g, err := reduction.NewWeakRCDPGadget(workload.ExistsForallExistsFamily(3, 18, 3, 10, 1))
	if err != nil {
		t.Fatalf("building gadget: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = g.WeaklyCompleteCtx(ctx)
	elapsed := time.Since(start)

	if !errors.Is(err, relcomplete.ErrDeadline) {
		t.Fatalf("want ErrDeadline after 50ms deadline, got %v (elapsed %v)", err, elapsed)
	}
	var de *relcomplete.DeadlineError
	if !errors.As(err, &de) {
		t.Fatalf("want *DeadlineError, got %T: %v", err, err)
	}
	if de.Op == "" {
		t.Errorf("DeadlineError.Op is empty: %+v", de)
	}
	if elapsed >= 500*time.Millisecond {
		t.Fatalf("cancellation latency %v, want < 500ms (deadline 50ms)", elapsed)
	}
	t.Logf("deadline 50ms, returned after %v: %v", elapsed, err)
}
