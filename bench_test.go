package relcomplete_test

// The benchmark harness of EXPERIMENTS.md: one benchmark per artifact
// of the paper's Table I (and Figures 1–2), each scaling a reduction
// family or a data-complexity workload. Absolute times are
// machine-specific; the experiment's claim is the SHAPE — exponential
// growth in the quantifier structure for the combined-complexity
// cells, polynomial growth in the instance size for the Section 7
// cells, and the orderings the paper predicts (weak RCDP costlier than
// strong on one family, MINPw(UCQ) costlier than MINPw(CQ), c-instance
// MINPs costlier than ground MINPs).

import (
	"fmt"
	"os"
	"testing"

	"relcomplete/internal/cc"
	"relcomplete/internal/core"
	"relcomplete/internal/ctable"
	"relcomplete/internal/eval"
	"relcomplete/internal/paperex"
	"relcomplete/internal/query"
	"relcomplete/internal/reduction"
	"relcomplete/internal/relation"
	"relcomplete/internal/sat"
	"relcomplete/internal/tractable"
	"relcomplete/internal/workload"
)

// naiveJoinEnv mirrors rcbench's -naivejoin ablation for the benchmark
// trajectory: RELCOMPLETE_NAIVEJOIN=1 re-times the suite on the
// nested-loop evaluator, and cmd/benchjson merges the two runs into
// BENCH_eval.json to report the indexed-engine speedup.
var naiveJoinEnv = os.Getenv("RELCOMPLETE_NAIVEJOIN") != ""

// boxedEnv mirrors rcbench's -boxed storage ablation the same way:
// RELCOMPLETE_BOXED=1 re-times the suite on boxed (non-interned)
// relation storage, folded into BENCH_eval.json as the interned-vs-
// boxed dimension.
var boxedEnv = os.Getenv("RELCOMPLETE_BOXED") != ""

func init() {
	if boxedEnv {
		// Gadgets and scenario databases are built before any Options
		// value exists, so the ablation has to flip the process-wide
		// storage default too.
		relation.SetDefaultBoxed(true)
	}
}

// benchCoreOpts is the Options value benchmarks start from.
func benchCoreOpts() core.Options {
	return core.Options{NaiveJoin: naiveJoinEnv, Boxed: boxedEnv}
}

// ---------------------------------------------------------------------------
// E-F1 — Figure 1 and the Examples 1.1–2.3 judgements.
// ---------------------------------------------------------------------------

func BenchmarkFigure1Scenario(b *testing.B) {
	b.Run("consistency_full", func(b *testing.B) {
		s := paperex.Full()
		p, err := s.Problem(s.Q1, benchCoreOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if ok, err := p.Consistent(s.T); err != nil || !ok {
				b.Fatal(ok, err)
			}
		}
	})
	b.Run("rcdp_strong_Q1_reduced", func(b *testing.B) {
		s := paperex.Reduced()
		p, err := s.Problem(s.Q1, benchCoreOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if ok, err := p.RCDP(s.T, core.Strong); err != nil || !ok {
				b.Fatal(ok, err)
			}
		}
	})
}

// ---------------------------------------------------------------------------
// E-F2 — Figure 2: the CQ encoding of Boolean formulas.
// ---------------------------------------------------------------------------

func BenchmarkFigure2SATEncoding(b *testing.B) {
	for _, clauses := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("clauses=%d", clauses), func(b *testing.B) {
			br := reduction.NewBoolRels()
			schema := relation.MustDBSchema(br.DataSchemas()...)
			db := relation.NewDatabase(schema)
			br.PopulateDatabase(db)
			f := sat.RandomCNF(6, clauses, 42)
			varNames := make([]string, f.Vars)
			for i := range varNames {
				varNames[i] = fmt.Sprintf("v%d", i+1)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				atoms, w, err := reduction.EncodeCNF(br, f, func(v int) query.Term {
					return query.V(varNames[v-1])
				}, "b_")
				if err != nil {
					b.Fatal(err)
				}
				kids := append(br.AssignmentAtoms(varNames), atoms...)
				q := query.MustQuery("Qpsi", []query.Term{query.V(w)}, query.Conj(kids...))
				if _, err := eval.Answers(db, q, eval.Options{NaiveJoin: naiveJoinEnv}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// E-T1-CONS / E-T1-EXT — consistency and extensibility on the
// Proposition 3.3 ∀*∃*3SAT family (Σp2): exponential in the ∀ block.
// ---------------------------------------------------------------------------

func BenchmarkConsistency3SAT(b *testing.B) {
	for _, n := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("forall=%d", n), func(b *testing.B) {
			q := workload.ForallExistsFamily(n, 2, 4, int64(n))
			g, err := reduction.NewConsistencyGadget(q)
			if err != nil {
				b.Fatal(err)
			}
			g.Problem.Options.NaiveJoin = naiveJoinEnv
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := g.ConsistencyHolds(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkExtensibility3SAT(b *testing.B) {
	for _, n := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("forall=%d", n), func(b *testing.B) {
			q := workload.ForallExistsFamily(n, 2, 4, int64(n))
			g, err := reduction.NewConsistencyGadget(q)
			if err != nil {
				b.Fatal(err)
			}
			g.Problem.Options.NaiveJoin = naiveJoinEnv
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := g.ExtensibilityHolds(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// E-T1-RCDPs / E-T1-RCDPw / E-T1-RCDPv — RCDP across the three models
// on matched inputs. The weak decider (Πp3) pays for the certain-answer
// intersections; strong (Πp2) and viable (Σp3) bound/witness checks.
// ---------------------------------------------------------------------------

func benchEFEGadget(b *testing.B, nY int, run func(g *reduction.WeakRCDPGadget) error) {
	q := workload.ExistsForallExistsFamily(1, nY, 1, 3, int64(nY))
	g, err := reduction.NewWeakRCDPGadget(q)
	if err != nil {
		b.Fatal(err)
	}
	g.Problem.Options.NaiveJoin = naiveJoinEnv
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := run(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRCDPWeak3SAT(b *testing.B) {
	for _, nY := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("forallY=%d", nY), func(b *testing.B) {
			benchEFEGadget(b, nY, func(g *reduction.WeakRCDPGadget) error {
				_, err := g.WeaklyComplete()
				return err
			})
		})
	}
}

func BenchmarkRCDPViable3SAT(b *testing.B) {
	for _, nX := range []int{1, 2} {
		b.Run(fmt.Sprintf("existsX=%d", nX), func(b *testing.B) {
			q := workload.ExistsForallExistsFamily(nX, 1, 1, 3, int64(nX))
			g, err := reduction.NewExistsForallExistsGadget(q, false)
			if err != nil {
				b.Fatal(err)
			}
			g.Problem.Options.NaiveJoin = naiveJoinEnv
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := g.RCDPViableHolds(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkRCDPStrongPatient(b *testing.B) {
	// Strong RCDP on the growing patient scenario: the Πp2 bound check
	// against the Figure 1-style CC set.
	s := paperex.Reduced()
	for _, extraRows := range []int{0, 2, 4} {
		b.Run(fmt.Sprintf("rows=%d", 1+extraRows), func(b *testing.B) {
			ci := s.T.Clone()
			for i := 0; i < extraRows; i++ {
				ci.MustAddRow("MVisit", ctable.Row{Terms: []query.Term{
					query.C(relation.Value(fmt.Sprintf("999-00-%03d", i))),
					query.C(relation.Value(fmt.Sprintf("P%d", i))),
					query.C("LON"), query.C("2000"),
				}})
			}
			p, err := s.Problem(s.Q1, benchCoreOpts())
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.RCDP(ci, core.Strong); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// E-T1-RCDPwFP — RCDPw(FP) on the SUCCINCT-TAUT circuit gadget
// (coNEXPTIME): exponential in the circuit's input count.
// ---------------------------------------------------------------------------

func BenchmarkRCDPWeakFP(b *testing.B) {
	for _, inputs := range []int{2, 4, 6} {
		b.Run(fmt.Sprintf("inputs=%d", inputs), func(b *testing.B) {
			circ := workload.CircuitFamily(inputs, 16, true, int64(inputs))
			g, err := reduction.NewCircuitFPGadget(circ)
			if err != nil {
				b.Fatal(err)
			}
			g.Problem.Options.NaiveJoin = naiveJoinEnv
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ok, err := g.WeaklyComplete()
				if err != nil || !ok {
					b.Fatal(ok, err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// E-T1-MINPs — MINPs on the Theorem 4.8 family: Πp3 for c-instances
// versus Dp2 for ground instances (the missing-values premium).
// ---------------------------------------------------------------------------

func BenchmarkMINPStrong3SAT(b *testing.B) {
	for _, nX := range []int{1, 2} {
		b.Run(fmt.Sprintf("cinstance/existsX=%d", nX), func(b *testing.B) {
			q := workload.ExistsForallExistsFamily(nX, 1, 1, 3, int64(nX))
			g, err := reduction.NewExistsForallExistsGadget(q, true)
			if err != nil {
				b.Fatal(err)
			}
			g.Problem.Options.NaiveJoin = naiveJoinEnv
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := g.MINPStrongHolds(); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("ground/existsX=%d", nX), func(b *testing.B) {
			q := workload.ExistsForallExistsFamily(nX, 1, 1, 3, int64(nX))
			g, err := reduction.NewExistsForallExistsGadget(q, true)
			if err != nil {
				b.Fatal(err)
			}
			g.Problem.Options.NaiveJoin = naiveJoinEnv
			// Ground the c-instance at one model: the Dp2 case.
			db, err := g.Problem.AnyModel(g.T)
			if err != nil || db == nil {
				b.Fatal(db, err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := g.Problem.GroundMinimal(db); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// E-T1-MINPw-CQ vs E-T1-MINPw-UCQ — the coDP / Πp4 gap of Theorem 5.6.
// ---------------------------------------------------------------------------

func BenchmarkMINPWeakCQ(b *testing.B) {
	for _, vars := range []int{2, 3, 4} {
		b.Run(fmt.Sprintf("vars=%d", vars), func(b *testing.B) {
			inst := workload.SATUNSATFamily(vars, vars+1, int64(vars))
			g, err := reduction.NewWeakMINPGadget(inst)
			if err != nil {
				b.Fatal(err)
			}
			g.Problem.Options.NaiveJoin = naiveJoinEnv
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := g.MinimalWeaklyComplete(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkMINPWeakUCQ(b *testing.B) {
	// Generic weak MINP (2^rows subset checks, each a Πp3 weak check)
	// on a UCQ over the bounded-order scenario.
	s := workload.NewBoundedScenario(3, benchCoreOpts())
	q := query.MustParseQuery("Q(i) := Order(i, '1') | Order(i, '2')")
	p := core.MustProblem(s.Schema, core.CalcQuery(q), s.Dm, s.CCs, benchCoreOpts())
	for _, rows := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			ci := s.Instance(rows, 0, int64(rows))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.MINP(ci, core.Weak); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkMINPViable3SAT(b *testing.B) {
	q := workload.ExistsForallExistsFamily(1, 1, 1, 3, 9)
	g, err := reduction.NewExistsForallExistsGadget(q, false)
	if err != nil {
		b.Fatal(err)
	}
	g.Problem.Options.NaiveJoin = naiveJoinEnv
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.MINPViableHolds(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// E-T1-RCQPs / E-T1-RCQPw — RCQP: the IND fast path, the bounded
// witness search, and the O(1) weak answer with its constructive
// witness.
// ---------------------------------------------------------------------------

func BenchmarkRCQPStrong(b *testing.B) {
	b.Run("ind_fastpath", func(b *testing.B) {
		s := paperex.Reduced()
		// Projection CC only: πNHS(MVisit) ⊆ πNHS(Patientm).
		ind := query.MustParseQuery("q(n, na) := MVisit(n, na, c, y)")
		right := query.MustParseQuery("p(n, na) := Patientm(n, na, y)")
		c, err := relcompleteParseCC("nhs", ind, right)
		if err != nil {
			b.Fatal(err)
		}
		p := core.MustProblem(s.Data, core.CalcQuery(s.Q1), s.Dm, c, benchCoreOpts())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.RCQP(core.Strong); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bounded_search", func(b *testing.B) {
		s := paperex.Reduced()
		p, err := s.Problem(s.Q1, core.Options{RCQPSizeBound: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.RCQP(core.Strong); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkRCQPWeakConstruct(b *testing.B) {
	for _, catalogue := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("catalogue=%d", catalogue), func(b *testing.B) {
			s := workload.NewBoundedScenario(catalogue, benchCoreOpts())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Problem.ConstructWeaklyComplete(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// E-T1-UNDEC — undecidable cells are refused in O(1).
// ---------------------------------------------------------------------------

func BenchmarkUndecidableDispatch(b *testing.B) {
	schema := relation.MustDBSchema(relation.MustSchema("R", relation.Attr("A", nil)))
	p := core.MustProblem(schema,
		core.CalcQuery(query.MustParseQuery("Q(x) := ! R(x)")), nil, nil, benchCoreOpts())
	ci := ctable.NewCInstance(schema)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.RCDP(ci, core.Strong); err == nil {
			b.Fatal("must refuse")
		}
	}
}

// ---------------------------------------------------------------------------
// E-S7 — the Section 7 tractable cases: polynomial growth in the
// instance size at fixed (Q, V) and bounded variables.
// ---------------------------------------------------------------------------

func BenchmarkTractableRCDP(b *testing.B) {
	s := workload.NewBoundedScenario(4, benchCoreOpts())
	for _, m := range []core.Model{core.Strong, core.Weak, core.Viable} {
		for _, rows := range []int{4, 8, 16, 32} {
			b.Run(fmt.Sprintf("%v/rows=%d", m, rows), func(b *testing.B) {
				ci := s.Instance(rows, 1, int64(rows))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := tractable.RCDP(s.Problem, ci, m, 2); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkTractableRCQPIND(b *testing.B) {
	s := paperex.Reduced()
	ind := query.MustParseQuery("q(n, na) := MVisit(n, na, c, y)")
	right := query.MustParseQuery("p(n, na) := Patientm(n, na, y)")
	ccSet, err := relcompleteParseCC("nhs", ind, right)
	if err != nil {
		b.Fatal(err)
	}
	p := core.MustProblem(s.Data, core.CalcQuery(s.Q1), s.Dm, ccSet, benchCoreOpts())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tractable.RCQP(p, core.Strong); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTractableMINP(b *testing.B) {
	s := workload.NewBoundedScenario(3, benchCoreOpts())
	for _, rows := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			ci := s.Instance(rows, 1, int64(rows))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tractable.MINP(s.Problem, ci, core.Strong, 2); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Parallel search engine — the same deciders at Parallelism 1 (the
// exact sequential path) and N. Verdicts are bit-identical at every
// worker count by construction (see internal/search); only wall-clock
// varies with the host's core count. internal/search's latency-bound
// benchmarks isolate the engine's speed-up; these measure it
// end-to-end on CPU-bound deciders.
// ---------------------------------------------------------------------------

func BenchmarkParallelWorkers(b *testing.B) {
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("rcdp_weak_3sat/workers=%d", workers), func(b *testing.B) {
			q := workload.ExistsForallExistsFamily(1, 2, 1, 3, 2)
			g, err := reduction.NewWeakRCDPGadget(q)
			if err != nil {
				b.Fatal(err)
			}
			g.Problem.Options.Parallelism = workers
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := g.WeaklyComplete(); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("rcdp_strong_patient/workers=%d", workers), func(b *testing.B) {
			s := paperex.Reduced()
			p, err := s.Problem(s.Q1, core.Options{Parallelism: workers})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if ok, err := p.RCDP(s.T, core.Strong); err != nil || !ok {
					b.Fatal(ok, err)
				}
			}
		})
		b.Run(fmt.Sprintf("consistency_3sat/workers=%d", workers), func(b *testing.B) {
			q := workload.ForallExistsFamily(2, 2, 4, 2)
			g, err := reduction.NewConsistencyGadget(q)
			if err != nil {
				b.Fatal(err)
			}
			g.Problem.Options.Parallelism = workers
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := g.ConsistencyHolds(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// E-P31 — the Proposition 3.1 FD(+IND) gadget.
// ---------------------------------------------------------------------------

func BenchmarkProp31Gadget(b *testing.B) {
	sch := relation.MustSchema("R",
		relation.Attr("A", nil), relation.Attr("B", nil),
		relation.Attr("C", nil), relation.Attr("D", nil))
	theta := []cc.FD{
		{Rel: "R", LHS: []string{"A"}, RHS: []string{"B"}},
		{Rel: "R", LHS: []string{"B"}, RHS: []string{"C"}},
	}
	phi := cc.FD{Rel: "R", LHS: []string{"A"}, RHS: []string{"D"}}
	g, err := reduction.NewProp31Gadget(sch, theta, nil, phi)
	if err != nil {
		b.Fatal(err)
	}
	pool := []relation.Value{"0", "1"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		complete, err := g.CompleteUpTo(2, pool)
		if err != nil {
			b.Fatal(err)
		}
		if complete {
			b.Fatal("A→D is not implied; a violation must be found")
		}
	}
}

// relcompleteParseCC wraps two parsed queries into a singleton CC set.
func relcompleteParseCC(name string, left, right *query.Query) (*cc.Set, error) {
	c, err := cc.New(name, left, right)
	if err != nil {
		return nil, err
	}
	return cc.NewSet(c), nil
}
